package ashare

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"atum"
)

func ringMembers(n int) []atum.NodeID {
	out := make([]atum.NodeID, n)
	for i := range out {
		out[i] = atum.NodeID(i + 1)
	}
	return out
}

func TestRingHoldersDeterministic(t *testing.T) {
	r := NewRing(ringMembers(10))
	k := FileKey{Owner: 3, Name: "movie.mkv"}
	a := r.Holders(k, 3)
	b := r.Holders(k, 3)
	if len(a) != 3 {
		t.Fatalf("got %d holders, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("holders not deterministic: %v vs %v", a, b)
		}
	}
}

func TestRingHoldersDistinct(t *testing.T) {
	property := func(nRaw, repRaw uint8, owner uint16, name string) bool {
		n := int(nRaw%20) + 1
		replicas := int(repRaw%5) + 1
		r := NewRing(ringMembers(n))
		k := FileKey{Owner: atum.NodeID(owner%8 + 1), Name: name}
		hs := r.Holders(k, replicas)
		want := replicas
		if n < want {
			want = n
		}
		if len(hs) != want {
			return false
		}
		seen := make(map[atum.NodeID]bool)
		for _, h := range hs {
			if seen[h] || h < 1 || int(h) > n {
				return false
			}
			seen[h] = true
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRingBalance(t *testing.T) {
	// With virtual nodes, no member should hold a grossly disproportionate
	// share of keys.
	const members, keys = 10, 2000
	r := NewRing(ringMembers(members))
	load := make(map[atum.NodeID]int)
	for i := 0; i < keys; i++ {
		k := FileKey{Owner: atum.NodeID(i%7 + 1), Name: fmt.Sprintf("file-%d", i)}
		load[r.Holders(k, 1)[0]]++
	}
	mean := keys / members
	for id, c := range load {
		if c > 3*mean {
			t.Fatalf("node %v holds %d keys (mean %d): ring badly unbalanced", id, c, mean)
		}
	}
	if len(load) != members {
		t.Fatalf("only %d/%d members hold any keys", len(load), members)
	}
}

func TestRingMembershipChangeMovesFewKeys(t *testing.T) {
	// Consistent hashing: removing one of 20 members should re-home only
	// around 1/20th of single-holder keys.
	const members, keys = 20, 2000
	before := NewRing(ringMembers(members))
	after := NewRing(ringMembers(members - 1)) // drop the last member

	moved, lost := 0, 0
	for i := 0; i < keys; i++ {
		k := FileKey{Owner: 1, Name: fmt.Sprintf("k%d", i)}
		b := before.Holders(k, 1)[0]
		a := after.Holders(k, 1)[0]
		if b == atum.NodeID(members) {
			lost++ // had to move: its holder left
			continue
		}
		if a != b {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved although their holder stayed", moved)
	}
	if lost == 0 || lost > keys/members*3 {
		t.Fatalf("departed member held %d keys, expected around %d", lost, keys/members)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if hs := r.Holders(FileKey{Owner: 1, Name: "x"}, 3); hs != nil {
		t.Fatalf("empty ring returned holders %v", hs)
	}
	if r.NumMembers() != 0 {
		t.Fatal("empty ring has members")
	}
}

// --- integration on the simulated cluster ---

// ringCluster wires a RingIndex into every node of a SimCluster.
func ringCluster(t *testing.T, n, replicas int) (*atum.SimCluster, []*atum.Node, []*RingIndex) {
	t.Helper()
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 5})
	nodes := make([]*atum.Node, 0, n)
	indexes := make([]*RingIndex, 0, n)
	for i := 0; i < n; i++ {
		ri := NewRingIndex(replicas)
		node := cluster.AddNodeWith(atum.Callbacks{Deliver: func(atum.Delivery) {}},
			func(cfg *atum.Config) {
				cfg.OnRawMessage = func(from atum.NodeID, msg any) { ri.HandleRaw(from, msg) }
			})
		ri.Bind(node)
		nodes = append(nodes, node)
		indexes = append(indexes, ri)
	}
	cluster.Run(10 * time.Millisecond)
	if err := nodes[0].Bootstrap(); err != nil {
		t.Fatal(err)
	}
	contact := nodes[0].Identity()
	for _, node := range nodes[1:] {
		if err := node.Join(contact); err != nil {
			t.Fatal(err)
		}
		if !cluster.RunUntil(node.IsMember, 2*time.Minute) {
			t.Fatal("join timed out")
		}
	}
	members := make([]atum.NodeID, n)
	for i, node := range nodes {
		members[i] = node.Identity().ID
	}
	for _, ri := range indexes {
		ri.SetMembers(members)
	}
	return cluster, nodes, indexes
}

func TestRingIndexPutLookup(t *testing.T) {
	cluster, _, indexes := ringCluster(t, 8, 3)

	meta := BuildMeta(1, "dataset.bin", []byte("0123456789abcdef"), 4)
	if err := indexes[0].Put(meta); err != nil {
		t.Fatal(err)
	}
	cluster.Run(5 * time.Second)

	// Records live at R holders, not everywhere.
	holders := 0
	for _, ri := range indexes {
		holders += ri.Stored()
	}
	if holders != 3 {
		t.Fatalf("record stored at %d nodes, want 3", holders)
	}

	// Any node can look it up.
	var got FileMeta
	var gotErr error
	resolved := false
	indexes[5].Lookup(meta.Key, func(m FileMeta, err error) {
		got, gotErr, resolved = m, err, true
	})
	if !cluster.RunUntil(func() bool { return resolved }, time.Minute) {
		t.Fatal("lookup did not resolve")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Key != meta.Key || got.Size != meta.Size || got.NumChunks() != meta.NumChunks() {
		t.Fatalf("lookup returned %+v, want %+v", got, meta)
	}
}

func TestRingIndexLookupMissing(t *testing.T) {
	cluster, _, indexes := ringCluster(t, 6, 3)
	var gotErr error
	resolved := false
	indexes[2].Lookup(FileKey{Owner: 9, Name: "nope"}, func(_ FileMeta, err error) {
		gotErr, resolved = err, true
	})
	if !cluster.RunUntil(func() bool { return resolved }, time.Minute) {
		t.Fatal("lookup did not resolve")
	}
	if gotErr != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", gotErr)
	}
}

func TestRingIndexMasksByzantineHolder(t *testing.T) {
	cluster, nodes, indexes := ringCluster(t, 8, 3)

	meta := BuildMeta(2, "ledger.db", []byte("the true content of the file!!"), 8)
	if err := indexes[1].Put(meta); err != nil {
		t.Fatal(err)
	}
	cluster.Run(5 * time.Second)

	// Corrupt one of the key's holders: it will serve forged metadata.
	holders := indexes[0].ring.Holders(meta.Key, 3)
	for i, node := range nodes {
		if node.Identity().ID == holders[0] {
			indexes[i].Corrupt = true
		}
	}

	var got FileMeta
	var gotErr error
	resolved := false
	indexes[7].Lookup(meta.Key, func(m FileMeta, err error) {
		got, gotErr, resolved = m, err, true
	})
	if !cluster.RunUntil(func() bool { return resolved }, time.Minute) {
		t.Fatal("lookup did not resolve")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	// The two honest holders outvote the forger.
	if got.NumChunks() != meta.NumChunks() || got.Size != meta.Size {
		t.Fatalf("forged metadata won the vote: %+v", got)
	}
}

func TestRingIndexDelete(t *testing.T) {
	cluster, _, indexes := ringCluster(t, 6, 3)
	meta := BuildMeta(1, "tmp.txt", []byte("x"), 1)
	if err := indexes[0].Put(meta); err != nil {
		t.Fatal(err)
	}
	cluster.Run(3 * time.Second)
	indexes[0].Delete(meta.Key)
	cluster.Run(3 * time.Second)
	for i, ri := range indexes {
		if ri.Stored() != 0 {
			t.Fatalf("node %d still stores %d records after delete", i, ri.Stored())
		}
	}
}
