package ashare

// The paper stores AShare's metadata index as a complete copy at every node
// and names a DHT-based index as future work (§4.2, footnote 5). This file
// implements that future-work direction as a working prototype: a
// consistent-hashing ring that places each file's metadata on R holder
// nodes, so the index scales with 1/n per node instead of full replication.
// Byzantine index holders are masked by querying all R holders and taking
// the majority answer (R ≥ 2f_idx+1 tolerates f_idx lying holders).

import (
	"encoding/binary"
	"sort"

	"atum"
	"atum/internal/crypto"
)

// ringVnodes is the number of virtual points each node occupies on the
// ring; more points smooth the load distribution.
const ringVnodes = 16

// Ring is a consistent-hashing ring over node IDs. The zero value is an
// empty ring; build one with NewRing or refresh membership with Update.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	pos uint64
	id  atum.NodeID
}

// NewRing builds a ring over the given members.
func NewRing(members []atum.NodeID) *Ring {
	r := &Ring{}
	r.Update(members)
	return r
}

// Update replaces the ring's membership. Consistent hashing moves only the
// keys adjacent to changed nodes.
func (r *Ring) Update(members []atum.NodeID) {
	r.points = r.points[:0]
	for _, id := range members {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{pos: ringPos(id, v), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].id < r.points[j].id
	})
}

// NumMembers returns the number of distinct nodes on the ring.
func (r *Ring) NumMembers() int {
	seen := make(map[atum.NodeID]bool)
	for _, p := range r.points {
		seen[p.id] = true
	}
	return len(seen)
}

// Holders returns the `replicas` distinct nodes whose ring positions follow
// the key's hash clockwise — the metadata holders for the key. Fewer nodes
// than requested returns all of them.
func (r *Ring) Holders(key FileKey, replicas int) []atum.NodeID {
	if len(r.points) == 0 || replicas <= 0 {
		return nil
	}
	h := keyPos(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	var out []atum.NodeID
	seen := make(map[atum.NodeID]bool)
	for i := 0; i < len(r.points) && len(out) < replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// IsHolder reports whether node is among the key's holders.
func (r *Ring) IsHolder(key FileKey, replicas int, node atum.NodeID) bool {
	for _, h := range r.Holders(key, replicas) {
		if h == node {
			return true
		}
	}
	return false
}

func ringPos(id atum.NodeID, vnode int) uint64 {
	var buf [18]byte
	copy(buf[:], "ringp")
	binary.BigEndian.PutUint64(buf[6:], uint64(id))
	binary.BigEndian.PutUint32(buf[14:], uint32(vnode))
	d := crypto.Hash(buf[:])
	return binary.BigEndian.Uint64(d[:8])
}

func keyPos(key FileKey) uint64 {
	var owner [8]byte
	binary.BigEndian.PutUint64(owner[:], uint64(key.Owner))
	d := crypto.Hash([]byte("ringk"), owner[:], []byte(key.Name))
	return binary.BigEndian.Uint64(d[:8])
}
