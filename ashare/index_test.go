package ashare

import (
	"testing"

	"atum"
	"atum/internal/crypto"
)

func meta(owner uint64, name string, size int) FileMeta {
	return FileMeta{
		Key: FileKey{Owner: atum.NodeID(owner), Name: name}, Size: size,
		ChunkSize: 1 << 20, ChunkDigests: []crypto.Digest{crypto.Hash([]byte(name))},
	}
}

func TestIndexPutLookupDelete(t *testing.T) {
	ix := NewIndex()
	m := meta(1, "a.txt", 100)
	ix.Put(m)
	got, ok := ix.Lookup(m.Key)
	if !ok || got.Size != 100 {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
	ix.Delete(m.Key)
	if _, ok := ix.Lookup(m.Key); ok {
		t.Error("Delete did not remove the record")
	}
}

func TestIndexReplicas(t *testing.T) {
	ix := NewIndex()
	m := meta(1, "r.bin", 10)
	ix.Put(m)
	ix.AddReplica(m.Key, 5)
	ix.AddReplica(m.Key, 3)
	ix.AddReplica(m.Key, 5) // duplicate
	got := ix.Replicas(m.Key)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Replicas = %v, want [3 5]", got)
	}
	ix.Delete(m.Key)
	if len(ix.Replicas(m.Key)) != 0 {
		t.Error("Delete should clear replicas")
	}
}

func TestIndexSearch(t *testing.T) {
	ix := NewIndex()
	ix.Put(meta(1, "report-2026.pdf", 1))
	ix.Put(meta(2, "report-2025.pdf", 2))
	ix.Put(meta(1, "music.mp3", 3))
	if got := ix.Search("report"); len(got) != 2 {
		t.Errorf("Search(report) = %d hits, want 2", len(got))
	}
	if got := ix.Search("n1/"); len(got) != 2 {
		t.Errorf("Search(n1/) = %d hits, want 2 (owner-scoped)", len(got))
	}
	if got := ix.Search("absent"); len(got) != 0 {
		t.Errorf("Search(absent) = %v", got)
	}
	// Results are sorted deterministically.
	got := ix.Search("report")
	if got[0].Key.String() > got[1].Key.String() {
		t.Error("search results not sorted")
	}
}

func TestBuildMetaChunks(t *testing.T) {
	content := make([]byte, 2_500_000)
	m := BuildMeta(7, "big", content, 1<<20)
	if m.NumChunks() != 3 {
		t.Errorf("NumChunks = %d, want 3", m.NumChunks())
	}
	if m.Size != len(content) {
		t.Errorf("Size = %d", m.Size)
	}
	empty := BuildMeta(7, "empty", nil, 1<<20)
	if empty.NumChunks() != 1 {
		t.Errorf("empty file should have 1 sentinel chunk, got %d", empty.NumChunks())
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	m := meta(9, "x", 42)
	b := encodeRecord(putRecord{Meta: m})
	v, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := v.(putRecord)
	if !ok || pr.Meta.Key != m.Key || pr.Meta.Size != 42 {
		t.Fatalf("round trip = %+v", v)
	}
	if _, err := decodeRecord([]byte("garbage")); err == nil {
		t.Error("garbage should not decode")
	}
}
