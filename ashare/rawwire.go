package ashare

// AShare's wire extension tags (docs/WIRE.md: ashare owns 0x90–0x9F). Every
// SendRaw type — chunk transfer and the ring-index RPCs — is registered with
// the engine's raw-message codec registry, so this traffic is wire-codable:
// the egress scheduler coalesces concurrent messages per destination node
// into batch carriers, and TCP transports frame them through the wire codec
// instead of the gob fallback. Tags are append-only wire contracts.

import (
	"atum"
	"atum/internal/crypto"
)

// Extension tag assignments. Append-only; never reorder or reuse.
const (
	rawTagChunkRequest  = 0x90
	rawTagChunkResponse = 0x91
	rawTagRingStore     = 0x92
	rawTagRingErase     = 0x93
	rawTagRingGet       = 0x94
	rawTagRingFound     = 0x95
)

func marshalFileKey(e *atum.WireEncoder, k FileKey) {
	e.Uint64(uint64(k.Owner))
	e.String(k.Name)
}

func unmarshalFileKey(d *atum.WireDecoder) FileKey {
	return FileKey{Owner: atum.NodeID(d.Uint64()), Name: d.String()}
}

func marshalFileMeta(e *atum.WireEncoder, m FileMeta) {
	marshalFileKey(e, m.Key)
	e.Int64(int64(m.Size))
	e.Int64(int64(m.ChunkSize))
	e.ListLen(len(m.ChunkDigests))
	for _, dg := range m.ChunkDigests {
		e.Bytes32(dg)
	}
}

func unmarshalFileMeta(d *atum.WireDecoder) FileMeta {
	var m FileMeta
	m.Key = unmarshalFileKey(d)
	m.Size = int(d.Int64())
	m.ChunkSize = int(d.Int64())
	n := d.ListLen()
	for i := 0; i < n && d.Err() == nil; i++ {
		m.ChunkDigests = append(m.ChunkDigests, crypto.Digest(d.Bytes32()))
	}
	return m
}

func init() {
	atum.RegisterRawMessage(rawTagChunkRequest, chunkRequest{},
		func(v any, e *atum.WireEncoder) {
			m := v.(chunkRequest)
			marshalFileKey(e, m.Key)
			e.Int64(int64(m.Idx))
		},
		func(d *atum.WireDecoder) any {
			return chunkRequest{Key: unmarshalFileKey(d), Idx: int(d.Int64())}
		})
	atum.RegisterRawMessage(rawTagChunkResponse, chunkResponse{},
		func(v any, e *atum.WireEncoder) {
			m := v.(chunkResponse)
			marshalFileKey(e, m.Key)
			e.Int64(int64(m.Idx))
			e.VarBytes(m.Data)
		},
		func(d *atum.WireDecoder) any {
			return chunkResponse{Key: unmarshalFileKey(d), Idx: int(d.Int64()), Data: d.VarBytes()}
		})
	atum.RegisterRawMessage(rawTagRingStore, ringStore{},
		func(v any, e *atum.WireEncoder) {
			marshalFileMeta(e, v.(ringStore).Meta)
		},
		func(d *atum.WireDecoder) any {
			return ringStore{Meta: unmarshalFileMeta(d)}
		})
	atum.RegisterRawMessage(rawTagRingErase, ringErase{},
		func(v any, e *atum.WireEncoder) {
			marshalFileKey(e, v.(ringErase).Key)
		},
		func(d *atum.WireDecoder) any {
			return ringErase{Key: unmarshalFileKey(d)}
		})
	atum.RegisterRawMessage(rawTagRingGet, ringGet{},
		func(v any, e *atum.WireEncoder) {
			m := v.(ringGet)
			e.Uint64(m.Seq)
			marshalFileKey(e, m.Key)
		},
		func(d *atum.WireDecoder) any {
			return ringGet{Seq: d.Uint64(), Key: unmarshalFileKey(d)}
		})
	atum.RegisterRawMessage(rawTagRingFound, ringFound{},
		func(v any, e *atum.WireEncoder) {
			m := v.(ringFound)
			e.Uint64(m.Seq)
			e.Bool(m.Has)
			marshalFileMeta(e, m.Meta)
		},
		func(d *atum.WireDecoder) any {
			return ringFound{Seq: d.Uint64(), Has: d.Bool(), Meta: unmarshalFileMeta(d)}
		})
}
