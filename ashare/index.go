package ashare

import (
	"bytes"
	"encoding/gob"
	"sort"
	"strings"
	"sync"

	"atum"
)

// Index is the metadata index of §4.2: a complete, local, soft-state copy of
// the file→replica mapping with search over the namespace. The paper backs
// it with SQLite; this implementation is a pure-Go ordered store with the
// same semantics (insert, delete, lookup, substring search) — see DESIGN.md
// for the substitution rationale.
type Index struct {
	mu       sync.RWMutex
	files    map[FileKey]FileMeta
	replicas map[FileKey]map[atum.NodeID]bool
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		files:    make(map[FileKey]FileMeta),
		replicas: make(map[FileKey]map[atum.NodeID]bool),
	}
}

// Put inserts or updates a file record.
func (ix *Index) Put(meta FileMeta) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.files[meta.Key] = meta
}

// Delete removes a file and its replica records.
func (ix *Index) Delete(key FileKey) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.files, key)
	delete(ix.replicas, key)
}

// Lookup returns the metadata for a file. The record is a copy: callers may
// keep or mutate it (ChunkDigests included) without corrupting the index.
func (ix *Index) Lookup(key FileKey) (FileMeta, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	m, ok := ix.files[key]
	return m.clone(), ok
}

// AddReplica records that node stores a replica of key.
func (ix *Index) AddReplica(key FileKey, node atum.NodeID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	set, ok := ix.replicas[key]
	if !ok {
		set = make(map[atum.NodeID]bool)
		ix.replicas[key] = set
	}
	set[node] = true
}

// Replicas returns the known replica holders of key, sorted.
func (ix *Index) Replicas(key FileKey) []atum.NodeID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]atum.NodeID, 0, len(ix.replicas[key]))
	for n := range ix.replicas[key] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of indexed files.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.files)
}

// Search returns files whose owner/name contains the term, sorted by key.
// Like Lookup, the records are copies — mutating them cannot corrupt the
// index.
func (ix *Index) Search(term string) []FileMeta {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []FileMeta
	for k, m := range ix.files {
		if strings.Contains(k.String(), term) {
			out = append(out, m.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// encodeRecord/decodeRecord serialize index update broadcasts.
func encodeRecord(v any) []byte {
	registerOnce.Do(registerTypes)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&recordEnvelope{V: v}); err != nil {
		panic("ashare: encode: " + err.Error())
	}
	return buf.Bytes()
}

func decodeRecord(b []byte) (any, error) {
	registerOnce.Do(registerTypes)
	var env recordEnvelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, err
	}
	return env.V, nil
}

type recordEnvelope struct {
	V any
}

var registerOnce sync.Once

func registerTypes() {
	gob.Register(putRecord{})
	gob.Register(replicaRecord{})
	gob.Register(deleteRecord{})
	gob.Register(chunkRequest{})
	gob.Register(chunkResponse{})
}
