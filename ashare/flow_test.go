package ashare

// Regression tests for GET behaviour under egress flow control: a chunk
// request shed at the sender's own bounded queue must fail the GET
// explicitly (all replicas exhausted), never wedge it silently.

import (
	"testing"
	"time"

	"atum"
)

// TestGetFailsFastWhenRequestsShed: with the egress queue toward the only
// replica full of equal-priority traffic, the GET's chunk request is
// rejected at the sender; the requester must treat the replica as failed
// and complete the GET with an explicit error instead of hanging on a
// phantom inflight request.
func TestGetFailsFastWhenRequestsShed(t *testing.T) {
	const limit = 8
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 51, Tweak: func(cfg *atum.Config) {
		cfg.EgressQueueLimit = limit
	}})
	var svcs []*Service
	var nodes []*atum.Node
	for i := 0; i < 2; i++ {
		s := New(Options{})
		n := cluster.AddNodeWith(s.Callbacks(), func(cfg *atum.Config) {
			cfg.OnRawMessage = s.HandleRaw
		})
		s.Bind(n)
		svcs = append(svcs, s)
		nodes = append(nodes, n)
	}
	cluster.Run(10 * time.Millisecond)
	if err := nodes[0].Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Join(nodes[0].Identity()); err != nil {
		t.Fatal(err)
	}
	if !cluster.RunUntil(nodes[1].IsMember, time.Minute) {
		t.Fatal("join timed out")
	}

	// The replica (node 0) holds the file; the getter (node 1) knows the
	// metadata and the replica.
	content := []byte("flow-controlled chunk")
	meta := BuildMeta(nodes[0].Identity().ID, "f", content, 16)
	svcs[0].HoldReplica(meta, content)
	svcs[1].index.Put(meta)
	svcs[1].index.AddReplica(meta.Key, nodes[0].Identity().ID)

	// Fill the getter's egress queue toward the replica with equal-priority
	// (Control) traffic so the GET's own request overflows. Bogus requests
	// for an unknown file are simply ignored at the replica.
	bogus := FileKey{Owner: 99, Name: "nope"}
	for i := 0; i < 4*limit; i++ {
		_ = nodes[1].SendRawWith(nodes[0].Identity().ID, chunkRequest{Key: bogus, Idx: i}, atum.SendOpts{})
	}

	done := make(chan error, 1)
	svcs[1].Get(meta.Key, func(_ []byte, _ int, err error) { done <- err })
	cluster.Run(5 * time.Second)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("GET succeeded although its request was shed; want an explicit all-replicas-failed error")
		}
	default:
		t.Fatal("GET neither completed nor failed: the shed request wedged it (phantom inflight)")
	}

	// Sanity: with a clear queue the same GET succeeds.
	cluster.Run(time.Second)
	svcs[1].Get(meta.Key, func(got []byte, _ int, err error) {
		if err != nil {
			t.Fatalf("retry GET failed: %v", err)
		}
		if string(got) != string(content) {
			t.Fatalf("retry GET returned %q", got)
		}
		done <- nil
	})
	cluster.Run(5 * time.Second)
	select {
	case <-done:
	default:
		t.Fatal("retry GET did not complete")
	}
}
