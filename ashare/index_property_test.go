package ashare

// Model-based property tests for the metadata index (the component that
// substitutes for the paper's SQLite store, §4.2): a random sequence of
// Put/Delete/AddReplica operations is applied both to the Index and to a
// plain-map reference model, and every observable query must agree.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"atum"
	"atum/internal/crypto"
)

func TestIndexAgreesWithModel(t *testing.T) {
	property := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndex()
		// Reference model mirroring the index semantics: file records and
		// replica sets live independently — a replica announcement may
		// arrive before the PUT record — and only Delete clears both.
		files := make(map[FileKey]FileMeta)
		replicas := make(map[FileKey]map[atum.NodeID]bool)

		keys := make([]FileKey, 8)
		for i := range keys {
			keys[i] = FileKey{Owner: atum.NodeID(rng.Intn(3) + 1), Name: fmt.Sprintf("file-%d", i)}
		}

		for _, b := range opsRaw {
			k := keys[int(b>>2)%len(keys)]
			switch b % 4 {
			case 0: // Put inserts or updates the file record only.
				meta := FileMeta{
					Key:          k,
					Size:         rng.Intn(1 << 20),
					ChunkSize:    1 << 10,
					ChunkDigests: []crypto.Digest{crypto.Hash([]byte(k.Name))},
				}
				ix.Put(meta)
				files[k] = meta
			case 1: // Delete clears the record and the replica set.
				ix.Delete(k)
				delete(files, k)
				delete(replicas, k)
			case 2: // AddReplica tracks holders even before the PUT arrives
				// (broadcast reordering means a replica announcement can
				// overtake the file announcement).
				node := atum.NodeID(rng.Intn(5) + 1)
				ix.AddReplica(k, node)
				if replicas[k] == nil {
					replicas[k] = make(map[atum.NodeID]bool)
				}
				replicas[k][node] = true
			case 3: // Lookup consistency probe.
				got, ok := ix.Lookup(k)
				want, wok := files[k]
				if ok != wok || (ok && got.Key != want.Key) {
					return false
				}
			}
		}

		// Final full agreement.
		if ix.Len() != len(files) {
			return false
		}
		for k, want := range files {
			got, ok := ix.Lookup(k)
			if !ok || got.Size != want.Size {
				return false
			}
		}
		for _, k := range keys {
			reps := ix.Replicas(k)
			if len(reps) != len(replicas[k]) {
				return false
			}
			for _, r := range reps {
				if !replicas[k][r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexSearchFindsAllMatching(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndex()
		names := []string{"report.pdf", "report-final.pdf", "notes.txt", "music.ogg", "holiday.jpg"}
		inserted := make(map[FileKey]string)
		for i, name := range names {
			if rng.Intn(2) == 0 {
				continue
			}
			k := FileKey{Owner: atum.NodeID(i%2 + 1), Name: name}
			ix.Put(FileMeta{Key: k, Size: 1})
			inserted[k] = name
		}
		for _, term := range []string{"report", ".pdf", "txt", "zzz-nothing"} {
			got := ix.Search(term)
			want := 0
			for _, name := range inserted {
				if strings.Contains(name, term) {
					want++
				}
			}
			if len(got) != want {
				return false
			}
			for _, m := range got {
				if !strings.Contains(m.Key.Name, term) && !strings.Contains(m.Key.String(), term) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexReplicasSortedAndDeduped(t *testing.T) {
	property := func(nodesRaw []uint8) bool {
		ix := NewIndex()
		k := FileKey{Owner: 1, Name: "f"}
		ix.Put(FileMeta{Key: k})
		uniq := make(map[atum.NodeID]bool)
		for _, b := range nodesRaw {
			id := atum.NodeID(b%16 + 1)
			ix.AddReplica(k, id)
			uniq[id] = true
		}
		reps := ix.Replicas(k)
		if len(reps) != len(uniq) {
			return false
		}
		return sort.SliceIsSorted(reps, func(i, j int) bool { return reps[i] < reps[j] })
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
