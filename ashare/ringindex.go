package ashare

import (
	"encoding/gob"
	"errors"

	"atum"
	"atum/internal/crypto"
	"atum/internal/wire"
)

// RingIndex is the future-work DHT-style metadata index (paper §4.2,
// footnote 5), layered on Atum's raw node messaging: each file's metadata
// record is stored at the R ring holders of its key instead of at every
// node. Reads query all holders and accept the answer a strict majority of
// them agree on, masking up to ⌊(R−1)/2⌋ Byzantine or stale holders.
//
// The prototype assumes the AShare membership model (global knowledge of
// participants, paper footnote 7): call SetMembers when membership changes.
// Like the rest of the engine it is single-goroutine: all methods must run
// in the owning node's actor context.
type RingIndex struct {
	node     *atum.Node
	ring     *Ring
	replicas int

	store   map[FileKey]FileMeta
	lookups map[uint64]*ringLookup
	seq     uint64

	// Corrupt makes this holder Byzantine: it serves forged metadata.
	Corrupt bool
}

type ringLookup struct {
	key       FileKey
	expect    int
	responses map[atum.NodeID]ringFound
	done      func(FileMeta, error)
}

// ErrNotFound reports a key with no majority-agreed record.
var ErrNotFound = errors.New("ashare: metadata not found")

// ErrNoQuorum reports holders answering without a strict majority agreeing.
var ErrNoQuorum = errors.New("ashare: no majority among index holders")

// --- wire messages (gob-registered for the TCP transport) ---

// ringStore installs a record at a holder.
type ringStore struct {
	Meta FileMeta
}

// ringErase removes a record from a holder.
type ringErase struct {
	Key FileKey
}

// ringGet queries a holder.
type ringGet struct {
	Seq uint64
	Key FileKey
}

// ringFound is a holder's reply.
type ringFound struct {
	Seq  uint64
	Has  bool
	Meta FileMeta
}

func init() {
	gob.Register(ringStore{})
	gob.Register(ringErase{})
	gob.Register(ringGet{})
	gob.Register(ringFound{})
}

// NewRingIndex creates a ring index with R metadata holders per key.
// R should be 2f+1 for the number of faulty holders to mask; 3 masks one.
func NewRingIndex(replicas int) *RingIndex {
	if replicas <= 0 {
		replicas = 3
	}
	return &RingIndex{
		ring:     NewRing(nil),
		replicas: replicas,
		store:    make(map[FileKey]FileMeta),
		lookups:  make(map[uint64]*ringLookup),
	}
}

// Bind attaches the index to its node.
func (ri *RingIndex) Bind(node *atum.Node) { ri.node = node }

// SetMembers refreshes the ring membership (global knowledge model).
func (ri *RingIndex) SetMembers(members []atum.NodeID) { ri.ring.Update(members) }

// Stored returns the number of records this node holds — with n members and
// R holders per key, roughly R/n of all records (vs. all of them for the
// fully replicated Index).
func (ri *RingIndex) Stored() int { return len(ri.store) }

// Put places the record at its R holders.
func (ri *RingIndex) Put(meta FileMeta) error {
	if ri.node == nil {
		return errors.New("ashare: ring index not bound")
	}
	holders := ri.ring.Holders(meta.Key, ri.replicas)
	if len(holders) == 0 {
		return errors.New("ashare: empty ring")
	}
	for _, h := range holders {
		if h == ri.node.Identity().ID {
			ri.store[meta.Key] = meta
			continue
		}
		ri.node.SendRawWith(h, ringStore{Meta: meta}, atum.SendOpts{})
	}
	return nil
}

// Delete removes the record from its holders.
func (ri *RingIndex) Delete(key FileKey) {
	for _, h := range ri.ring.Holders(key, ri.replicas) {
		if h == ri.node.Identity().ID {
			delete(ri.store, key)
			continue
		}
		ri.node.SendRawWith(h, ringErase{Key: key}, atum.SendOpts{})
	}
}

// Lookup queries the key's holders and calls done once a strict majority of
// them agree (with the agreed record, or ErrNotFound), or with ErrNoQuorum
// after every holder answered without majority. Holders that never answer
// leave the lookup pending; use Cancel to abandon it.
func (ri *RingIndex) Lookup(key FileKey, done func(FileMeta, error)) uint64 {
	holders := ri.ring.Holders(key, ri.replicas)
	ri.seq++
	seq := ri.seq
	lk := &ringLookup{
		key:       key,
		expect:    len(holders),
		responses: make(map[atum.NodeID]ringFound),
		done:      done,
	}
	ri.lookups[seq] = lk
	if len(holders) == 0 {
		delete(ri.lookups, seq)
		done(FileMeta{}, ErrNotFound)
		return seq
	}
	for _, h := range holders {
		if h == ri.node.Identity().ID {
			meta, ok := ri.store[key]
			ri.acceptReply(seq, h, ringFound{Seq: seq, Has: ok, Meta: meta})
			continue
		}
		ri.node.SendRawWith(h, ringGet{Seq: seq, Key: key}, atum.SendOpts{})
	}
	return seq
}

// Cancel abandons a pending lookup without calling done.
func (ri *RingIndex) Cancel(seq uint64) { delete(ri.lookups, seq) }

// HandleRaw processes ring-index messages; returns false for messages that
// belong to someone else (chain it with other raw handlers).
func (ri *RingIndex) HandleRaw(from atum.NodeID, msg any) bool {
	switch m := msg.(type) {
	case ringStore:
		// Only accept placements this node actually holds; a Byzantine
		// writer cannot spray records across the whole system.
		if ri.ring.IsHolder(m.Meta.Key, ri.replicas, ri.node.Identity().ID) {
			ri.store[m.Meta.Key] = m.Meta
		}
		return true
	case ringErase:
		delete(ri.store, m.Key)
		return true
	case ringGet:
		meta, ok := ri.store[m.Key]
		if ri.Corrupt {
			// Byzantine holder: claim a forged record exists.
			meta = FileMeta{Key: m.Key, Size: 1, ChunkSize: 1,
				ChunkDigests: []crypto.Digest{crypto.Hash([]byte("forged"))}}
			ok = true
		}
		ri.node.SendRawWith(from, ringFound{Seq: m.Seq, Has: ok, Meta: meta}, atum.SendOpts{})
		return true
	case ringFound:
		ri.acceptReply(m.Seq, from, m)
		return true
	default:
		return false
	}
}

// acceptReply tallies one holder's answer and resolves the lookup when a
// strict majority of holders agree on the same answer.
func (ri *RingIndex) acceptReply(seq uint64, from atum.NodeID, m ringFound) {
	lk, ok := ri.lookups[seq]
	if !ok {
		return
	}
	if !ri.ring.IsHolder(lk.key, ri.replicas, from) {
		return // answer from a non-holder
	}
	if _, dup := lk.responses[from]; dup {
		return
	}
	lk.responses[from] = m

	majority := lk.expect/2 + 1
	counts := make(map[crypto.Digest]int)
	for _, resp := range lk.responses {
		counts[replyDigest(resp)]++
	}
	for dig, count := range counts {
		if count < majority {
			continue
		}
		delete(ri.lookups, seq)
		for _, resp := range lk.responses {
			if replyDigest(resp) == dig {
				if resp.Has {
					lk.done(resp.Meta, nil)
				} else {
					lk.done(FileMeta{}, ErrNotFound)
				}
				return
			}
		}
	}
	if len(lk.responses) == lk.expect {
		delete(ri.lookups, seq)
		lk.done(FileMeta{}, ErrNoQuorum)
	}
}

// replyDigest canonically fingerprints a holder's answer.
func replyDigest(m ringFound) crypto.Digest {
	var e wire.Encoder
	e.Bool(m.Has)
	e.Uint64(uint64(m.Meta.Key.Owner))
	e.String(m.Meta.Key.Name)
	e.Uint64(uint64(m.Meta.Size))
	e.Uint64(uint64(m.Meta.ChunkSize))
	e.Uint64(uint64(len(m.Meta.ChunkDigests)))
	for _, d := range m.Meta.ChunkDigests {
		e.Bytes32(d)
	}
	return crypto.Hash(e.Bytes())
}
