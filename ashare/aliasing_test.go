package ashare

// Regression tests for accessor aliasing: index accessors must hand out
// copies, never views into the stored records.

import (
	"testing"

	"atum/internal/crypto"
)

func TestIndexAccessorsDoNotAlias(t *testing.T) {
	ix := NewIndex()
	meta := FileMeta{
		Key: FileKey{Owner: 1, Name: "file"}, Size: 64, ChunkSize: 32,
		ChunkDigests: []crypto.Digest{crypto.Hash([]byte("a")), crypto.Hash([]byte("b"))},
	}
	ix.Put(meta)

	got, ok := ix.Lookup(meta.Key)
	if !ok {
		t.Fatal("lookup miss")
	}
	got.ChunkDigests[0] = crypto.Hash([]byte("corrupted"))

	fresh, _ := ix.Lookup(meta.Key)
	if fresh.ChunkDigests[0] != crypto.Hash([]byte("a")) {
		t.Fatal("index record corrupted through the Lookup result (ChunkDigests aliased)")
	}

	results := ix.Search("file")
	if len(results) != 1 {
		t.Fatalf("search returned %d records", len(results))
	}
	results[0].ChunkDigests[1] = crypto.Hash([]byte("corrupted-too"))
	fresh, _ = ix.Lookup(meta.Key)
	if fresh.ChunkDigests[1] != crypto.Hash([]byte("b")) {
		t.Fatal("index record corrupted through the Search result (ChunkDigests aliased)")
	}
}
