package atum_test

import (
	"bytes"
	"testing"
	"time"

	"atum"
	"atum/ashare"
	"atum/astream"
	"atum/asub"
	"atum/internal/simnet"
)

// buildCluster grows a small simulated instance and returns nodes.
func buildCluster(t *testing.T, seed int64, n int, net *simnet.Config,
	mk func(i int, c *atum.SimCluster) *atum.Node) (*atum.SimCluster, []*atum.Node) {
	t.Helper()
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: seed, NetConfig: net})
	nodes := make([]*atum.Node, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, mk(i, cluster))
	}
	cluster.Run(10 * time.Millisecond)
	if err := nodes[0].Bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	for _, nd := range nodes[1:] {
		if err := nd.Join(nodes[0].Identity()); err != nil {
			t.Fatalf("join: %v", err)
		}
		if !cluster.RunUntil(nd.IsMember, 2*time.Minute) {
			t.Fatalf("node %v did not join", nd.Identity().ID)
		}
	}
	return cluster, nodes
}

func TestPublicAPIBroadcast(t *testing.T) {
	got := make(map[atum.NodeID][]byte)
	cluster, nodes := buildCluster(t, 1, 5, nil, func(i int, c *atum.SimCluster) *atum.Node {
		var n *atum.Node
		n = c.AddNode(atum.Callbacks{
			Deliver: func(d atum.Delivery) { got[n.Identity().ID] = d.Data },
		})
		return n
	})
	if err := nodes[1].BroadcastWith([]byte("api"), atum.BroadcastOpts{}); err != nil {
		t.Fatal(err)
	}
	cluster.Run(15 * time.Second)
	for _, n := range nodes {
		if string(got[n.Identity().ID]) != "api" {
			t.Errorf("node %v missed the broadcast", n.Identity().ID)
		}
	}
}

func TestASubPubSub(t *testing.T) {
	events := make(map[int][]asub.Event)
	var parts []*asub.Participant
	cluster, _ := buildCluster(t, 2, 4, nil, func(i int, c *atum.SimCluster) *atum.Node {
		cb, bind := asub.Wire("topic-x", asub.Options{
			OnEvent: func(ev asub.Event) { events[i] = append(events[i], ev) },
		})
		n := c.AddNode(cb)
		parts = append(parts, bind(n))
		return n
	})
	if err := parts[2].Publish([]byte("event-1")); err != nil {
		t.Fatal(err)
	}
	cluster.Run(15 * time.Second)
	for i := 0; i < 4; i++ {
		if len(events[i]) != 1 || string(events[i][0].Data) != "event-1" {
			t.Errorf("participant %d events = %v", i, events[i])
		}
		if len(events[i]) == 1 && events[i][0].Topic != "topic-x" {
			t.Errorf("wrong topic: %v", events[i][0].Topic)
		}
	}
}

func TestAShareEndToEnd(t *testing.T) {
	net := &simnet.Config{Seed: 3, Latency: simnet.LANLatency(),
		BandwidthUp: 100 << 20, BandwidthDown: 100 << 20}
	var services []*ashare.Service
	cluster, _ := buildCluster(t, 3, 4, net, func(i int, c *atum.SimCluster) *atum.Node {
		svc := ashare.New(ashare.Options{Rho: 3, SystemSize: 4, ChunkSize: 128 << 10, Corrupt: i == 3})
		n := c.AddNodeWith(svc.Callbacks(), func(cfg *atum.Config) { cfg.OnRawMessage = svc.HandleRaw })
		svc.Bind(n)
		services = append(services, svc)
		return n
	})
	content := bytes.Repeat([]byte("shared-data"), 1<<15)
	meta, err := services[0].Put("f1", content)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run(15 * time.Second)
	if hits := services[1].Search("f1"); len(hits) != 1 {
		t.Fatalf("search hits = %v", hits)
	}
	var gotContent []byte
	var gotErr error
	done := false
	services[1].Get(meta.Key, func(c []byte, _ int, err error) {
		gotContent, gotErr, done = c, err, true
	})
	if !cluster.RunUntil(func() bool { return done }, 2*time.Minute) {
		t.Fatal("GET did not complete")
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !bytes.Equal(gotContent, content) {
		t.Fatal("GET content mismatch")
	}
	// Delete propagates.
	if err := services[0].Delete("f1"); err != nil {
		t.Fatal(err)
	}
	cluster.Run(10 * time.Second)
	if _, ok := services[2].Index().Lookup(meta.Key); ok {
		t.Error("DELETE did not remove the index entry everywhere")
	}
}

func TestAStreamVerifiedDelivery(t *testing.T) {
	var services []*astream.Service
	cluster, _ := buildCluster(t, 4, 5, nil, func(i int, c *atum.SimCluster) *atum.Node {
		svc := astream.New(astream.Options{Mode: astream.Double})
		n := c.AddNodeWith(svc.Callbacks(), func(cfg *atum.Config) { cfg.OnRawMessage = svc.HandleRaw })
		svc.Bind(n)
		services = append(services, svc)
		return n
	})
	payload := bytes.Repeat([]byte("s"), 50<<10)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := services[0].Publish(seq, payload); err != nil {
			t.Fatal(err)
		}
		cluster.Run(100 * time.Millisecond)
	}
	cluster.Run(20 * time.Second)
	for i, svc := range services {
		for seq := uint64(1); seq <= 5; seq++ {
			if !svc.Delivered(seq) {
				t.Errorf("node %d: chunk %d not delivered", i, seq)
			}
		}
	}
}
