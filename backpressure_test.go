package atum_test

// Acceptance test for the flow-controlled send surface (PR 5): under a
// slow-consumer raw flood, pacing off the egress pressure signals keeps
// broadcast delivery intact and moves the losses from the transport (where
// they drown gossip carriers) to the senders (application-chosen shedding).

import (
	"testing"

	"atum/internal/experiment"
)

func TestBackpressureMovesDropsToApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	const n, publishers, rounds, seed = 48, 8, 8, 1

	blind, err := experiment.BackpressureRun(n, publishers, rounds, false, seed)
	if err != nil {
		t.Fatalf("blind run: %v", err)
	}
	paced, err := experiment.BackpressureRun(n, publishers, rounds, true, seed)
	if err != nil {
		t.Fatalf("paced run: %v", err)
	}

	// The blind flood must actually overload the slow consumer: transport
	// drops, including protocol carriers, and lost broadcasts at that node.
	if blind.TransportDrops == 0 {
		t.Fatal("blind flood caused no transport overload drops; the scenario is not stressing the slow consumer")
	}
	if blind.SlowDelivered > 0.9 {
		t.Fatalf("blind flood: slow consumer still delivered %.2f of broadcasts; overload too weak", blind.SlowDelivered)
	}

	// With pacing: full delivery at the slow consumer, and the raw-flood
	// losses move from transport-level drops to sender-side shedding.
	if paced.SlowDelivered != 1.0 {
		t.Fatalf("paced: slow consumer delivered %.2f of broadcasts, want 1.00", paced.SlowDelivered)
	}
	if paced.Delivered != 1.0 {
		t.Fatalf("paced: overall delivery %.2f, want 1.00", paced.Delivered)
	}
	if paced.TransportDrops*10 > blind.TransportDrops {
		t.Fatalf("paced transport drops %d not an order of magnitude under blind's %d",
			paced.TransportDrops, blind.TransportDrops)
	}
	shed := paced.AppSheds + paced.EgressDropsOverflow + paced.EgressDropsExpired
	if shed == 0 {
		t.Fatal("paced run shed nothing at the application; the pressure signal never engaged")
	}

	// Flow control must actually bound the egress queues.
	if paced.QueueLimit <= 0 {
		t.Fatal("paced run reported no queue limit")
	}
	if paced.MaxDepth > paced.QueueLimit {
		t.Fatalf("paced egress depth %d exceeded EgressQueueLimit %d", paced.MaxDepth, paced.QueueLimit)
	}
}
