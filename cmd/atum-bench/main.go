// Command atum-bench regenerates the paper's evaluation tables and figures
// (§6) on the discrete-event simulator.
//
// Usage:
//
//	atum-bench -exp all                 # everything, paper-like scale
//	atum-bench -exp fig8 -n 200 -byz 0  # one experiment
//	atum-bench -exp fig4 -quick         # smoke scale
//
// Experiments: table1 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// batching wirecodec egress frames tree backpressure all.
// Output: paper-style rows on stdout; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"atum/internal/experiment"
	"atum/internal/smr"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp   = flag.String("exp", "all", "experiment: table1|robustness|fig4|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|batching|wirecodec|egress|frames|tree|backpressure|all")
		n     = flag.Int("n", 0, "system size override")
		byz   = flag.Int("byz", 0, "byzantine node count (fig8)")
		seed  = flag.Int64("seed", 1, "simulation seed")
		quick = flag.Bool("quick", false, "smoke-test scale")
		mode  = flag.String("mode", "sync", "smr mode: sync|async")
	)
	flag.Parse()

	m := smr.ModeSync
	if *mode == "async" {
		m = smr.ModeAsync
	}

	runOne := func(name string) bool {
		switch name {
		case "table1":
			fmt.Print(experiment.Table1())
		case "robustness":
			sizes := []int{200, 500, 1000, 2000, 5000}
			if *quick {
				sizes = []int{200, 1000}
			}
			ks := []int{3, 4, 5, 6, 7}
			fmt.Print(experiment.Robustness(sizes, ks, 0.06, smr.ModeSync))
			fmt.Println()
			fmt.Print(experiment.Robustness(sizes, ks, 0.06, smr.ModeAsync))
			fmt.Println()
			// Decay becomes visible at heavier fault loads.
			fmt.Print(experiment.Robustness(sizes, ks, 0.15, smr.ModeAsync))
		case "fig4":
			counts := []int{8, 32, 128, 512}
			walks := 30
			if *quick {
				counts = []int{8, 32}
				walks = 10
			}
			fmt.Print(experiment.Fig4(counts, []int{2, 4, 6, 8}, walks, *seed))
		case "fig6":
			target := pick(*n, 120, *quick, 24)
			fmt.Print(experiment.Fig6(m, target, *seed))
		case "fig7":
			sizes := []int{24, 48}
			if *quick {
				sizes = []int{12}
			}
			fmt.Print(experiment.Fig7(m, sizes, *seed))
		case "fig8":
			size := pick(*n, 60, *quick, 16)
			b := 20
			if *quick {
				b = 5
			}
			fmt.Print(experiment.Fig8(m, size, *byz, b, 1500*time.Millisecond, *seed))
			if *byz == 0 && !*quick {
				fmt.Print(experiment.Fig8(m, size, size/17, b, 1500*time.Millisecond, *seed))
			}
		case "fig9":
			sizes := []int{2, 8, 32, 128}
			if *quick {
				sizes = []int{2, 8}
			}
			fmt.Print(experiment.Fig9(sizes, *seed))
		case "fig10":
			fmt.Print(experiment.Fig10(10, pickSlice(*quick, []int{8, 12, 16, 20}, []int{8, 12}), 6, *seed))
		case "fig11":
			fmt.Print(experiment.Fig10(10, pickSlice(*quick, []int{8, 12, 16, 20}, []int{8, 12}), 6, *seed+1))
		case "fig12":
			size := pick(*n, 20, *quick, 10)
			chunks := 20
			if *quick {
				chunks = 5
			}
			fmt.Print(experiment.Fig12(size, chunks, *seed))
		case "fig13":
			target := pick(*n, 60, *quick, 20)
			rates := []int{8, 20, 24}
			if *quick {
				rates = []int{8, 24}
			}
			fmt.Print(experiment.Fig13(target, rates, *seed))
		case "batching":
			size := pick(*n, 60, *quick, 24)
			rounds := 8
			if *quick {
				rounds = 3
			}
			fmt.Print(experiment.Batching(size, 8, rounds, *seed))
		case "wirecodec":
			size := pick(*n, 60, *quick, 24)
			rounds := 8
			if *quick {
				rounds = 3
			}
			fmt.Print(experiment.WireCodec(size, 8, rounds, *seed))
		case "egress":
			size := pick(*n, 60, *quick, 24)
			rounds := 8
			if *quick {
				rounds = 6
			}
			fmt.Print(experiment.Egress(size, 8, rounds, *seed))
		case "frames":
			size := pick(*n, 60, *quick, 24)
			rounds := 8
			if *quick {
				rounds = 6
			}
			fmt.Print(experiment.Frames(size, 8, rounds, *seed))
		case "tree":
			// The eager/lazy split pays off per distinct overlay link; below
			// ~8 vgroups the H-graph cycle slots alias onto a handful of
			// neighbors and there is nothing to demote, so quick mode keeps
			// N=60 and trims rounds instead.
			size := pick(*n, 60, *quick, 60)
			rounds := 6
			if *quick {
				rounds = 4
			}
			fmt.Print(experiment.Tree(size, 8, rounds, *seed))
		case "backpressure":
			// The slow-consumer scenario needs enough stable members for 8
			// publishers + 8 flooders + the slow node; N stays >= 48 even in
			// quick mode (the run is seconds either way).
			size := pick(*n, 48, *quick, 48)
			rounds := 12
			if *quick {
				rounds = 6
			}
			fmt.Print(experiment.Backpressure(size, 8, rounds, *seed))
		default:
			return false
		}
		fmt.Println()
		return true
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "robustness", "fig4", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "batching", "wirecodec", "egress", "frames", "tree", "backpressure"} {
			runOne(name)
		}
		return 0
	}
	if !runOne(*exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

func pick(override, def int, quick bool, quickDef int) int {
	if override > 0 {
		return override
	}
	if quick {
		return quickDef
	}
	return def
}

func pickSlice(quick bool, full, small []int) []int {
	if quick {
		return small
	}
	return full
}
