package main

import (
	"testing"

	"atum/internal/lint"
	"atum/internal/lint/analysis"
)

// TestRepoClean runs the full atumvet suite over the module and asserts
// zero findings: every invariant the analyzers encode holds across the
// tree, and every deliberate exception carries an //atumvet:allow
// directive with a reason. A finding here is either a real bug at the
// reported site or a new idiom the analyzer must learn — fix the site or
// extend the analyzer, never delete the test.
func TestRepoClean(t *testing.T) {
	units, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := analysis.Run(units, lint.Analyzers())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
