// Command atumvet runs the repo's custom static analyzers: wiresym
// (wire-codec pair symmetry and kind-tag registry drift), retainview
// (zero-copy view lifetimes), detclock (wall-clock and global-rand
// bans in the deterministic packages), and the four type-aware passes —
// actorconfine (engine state confined to the actor loop), egressonly
// (all core sends route through the egress scheduler), aliasret
// (exported API methods clone reference state on the way out), and
// kindcover (wire kind registry dispatch coverage). It exits non-zero
// when any finding survives the //atumvet:allow directives, printing
// findings in the familiar file:line:col form — plus GitHub error
// annotations when running under Actions.
//
// Usage:
//
//	atumvet [-C dir] [packages]
//
// where packages are directories or dir/... subtree patterns relative to
// the module root; the default is ./... .
package main

import (
	"flag"
	"fmt"
	"os"

	"atum/internal/lint"
	"atum/internal/lint/analysis"
)

func main() {
	root := flag.String("C", ".", "module root to analyze from")
	flag.Parse()
	patterns := flag.Args()

	units, err := analysis.Load(*root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atumvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(units, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "atumvet: %v\n", err)
		os.Exit(2)
	}
	annotate := os.Getenv("GITHUB_ACTIONS") == "true"
	for _, d := range diags {
		fmt.Println(d.String())
		if annotate {
			fmt.Printf("::error file=%s,line=%d,col=%d::%s: %s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "atumvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
