// Command benchguard is the CI allocation-regression guard: it reads `go
// test -bench -benchmem` output on stdin, matches benchmark names against a
// checked-in baseline, and fails when any benchmark's allocs/op exceeds its
// budget — a benchstat-style gate cheap enough to run on every push.
//
// Usage:
//
//	go test -run '^$' -bench BatchEncodeDecode -benchmem ./internal/group | \
//	    go run ./cmd/benchguard -baseline bench/batch_allocs_baseline.json
//
// The baseline maps a benchmark-name substring to the maximum allowed
// allocs/op (budgets carry headroom over measured values; tighten them when
// the measured numbers drop for good). Every baseline entry must match at
// least one benchmark line, so a renamed benchmark cannot silently skip its
// gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one -benchmem result line, e.g.
// BenchmarkFoo/v2/decode-8  500  33071 ns/op  48104 B/op  11 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

func main() {
	os.Exit(run())
}

func run() int {
	baselinePath := flag.String("baseline", "", "JSON file: benchmark-name substring -> max allocs/op")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		return 2
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		return 2
	}
	var budgets map[string]float64
	if err := json.Unmarshal(raw, &budgets); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		return 2
	}

	matched := make(map[string]bool)
	fail := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through for the CI log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		allocs, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		for sub, budget := range budgets {
			if !strings.Contains(name, sub) {
				continue
			}
			matched[sub] = true
			if allocs > budget {
				fmt.Fprintf(os.Stderr, "benchguard: %s: %.0f allocs/op exceeds budget %.0f\n",
					name, allocs, budget)
				fail = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		return 2
	}
	for sub := range budgets {
		if !matched[sub] {
			fmt.Fprintf(os.Stderr, "benchguard: baseline entry %q matched no benchmark\n", sub)
			fail = true
		}
	}
	if fail {
		return 1
	}
	fmt.Println("benchguard: all benchmarks within allocation budgets")
	return 0
}
