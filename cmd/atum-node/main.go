// Command atum-node runs one Atum node over real TCP — the deployment shape
// of the middleware: one process per node, joined into a single group
// communication instance.
//
// Start the first node (bootstraps a new instance):
//
//	atum-node -listen 127.0.0.1:7001 -id 1 -bootstrap
//
// Join more nodes through any running node as contact:
//
//	atum-node -listen 127.0.0.1:7002 -id 2 -join 127.0.0.1:7001 -contact-id 1
//
// Every line read from stdin is broadcast to the whole instance; every
// delivered broadcast is printed to stdout. This makes atum-node a tiny
// cluster-wide chat — the minimal application of a group communication
// service — and doubles as a manual integration harness.
//
// The contact's public key is fetched over the first connection (trust on
// first use), mirroring the paper's §3.3.2: the contact node is the one
// entity a joiner must trust.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atum"
	"atum/internal/crypto"
	"atum/internal/ids"
	"atum/internal/tcpnet"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
		advertise = flag.String("advertise", "", "address peers should dial (default: the listen address)")
		id        = flag.Uint64("id", 0, "this node's numeric ID (required, unique per instance)")
		bootstrap = flag.Bool("bootstrap", false, "create a new Atum instance")
		join      = flag.String("join", "", "contact node address to join through")
		contactID = flag.Uint64("contact-id", 0, "contact node's numeric ID (required with -join)")
		mode      = flag.String("mode", "async", "SMR engine: sync or async")
		gmax      = flag.Int("gmax", 8, "maximum vgroup size before a split")
		hc        = flag.Int("hc", 3, "number of H-graph cycles")
		rwl       = flag.Int("rwl", 4, "random walk length")
		verbose   = flag.Bool("v", false, "engine debug logs to stderr")
	)
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *id == 0 {
		log.Fatal("atum-node: -id is required and must be nonzero")
	}
	if *bootstrap == (*join != "") {
		log.Fatal("atum-node: exactly one of -bootstrap or -join is required")
	}
	if *join != "" && *contactID == 0 {
		log.Fatal("atum-node: -contact-id is required with -join")
	}
	smrMode := atum.ModeAsync
	if *mode == "sync" {
		smrMode = atum.ModeSync
	} else if *mode != "async" {
		log.Fatalf("atum-node: unknown -mode %q", *mode)
	}

	atum.RegisterWireMessages()

	// Runtime and transport reference each other; bind late.
	var shim lateTransport
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) { log.Printf(format, args...) }
	}
	rt := atum.NewRealtimeRuntime(atum.RealtimeOptions{
		Seed:      int64(*id),
		Mode:      smrMode,
		Transport: &shim,
		Logf:      logf,
	})
	defer rt.Close()

	tr, err := tcpnet.New(ids.NodeID(*id), rt.RT, tcpnet.Options{
		ListenAddr:    *listen,
		AdvertiseAddr: *advertise,
		Codec:         atum.WireMessageCodec(),
		Logf:          logf,
	})
	if err != nil {
		log.Fatalf("atum-node: %v", err)
	}
	shim.tr = tr

	node, err := rt.AddNodeWith(atum.Callbacks{
		Deliver: func(d atum.Delivery) {
			fmt.Printf("<%v> %s\n", d.Origin, d.Data)
		},
		OnJoined: func(comp atum.GroupComposition) {
			log.Printf("joined vgroup g%d (epoch %d, %d members)", comp.GroupID, comp.Epoch, comp.N())
		},
		OnLeft: func(reason string) {
			log.Printf("left the system: %s", reason)
		},
	}, func(c *atum.Config) {
		c.Identity = atum.Identity{ID: ids.NodeID(*id), Addr: tr.Addr()}
		c.SignerSeed = []byte(fmt.Sprintf("atum-node-%d", *id))
		c.Scheme = crypto.Ed25519Scheme{}
		c.Params = atum.Params{HC: *hc, RWL: *rwl, GMax: *gmax, GMin: *gmax / 2}
	})
	if err != nil {
		log.Fatalf("atum-node: %v", err)
	}

	log.Printf("node n%d listening on %s (%s mode)", *id, tr.Addr(), *mode)

	if *bootstrap {
		if err := rt.Bootstrap(node); err != nil {
			log.Fatalf("atum-node: bootstrap: %v", err)
		}
		log.Printf("bootstrapped a new Atum instance")
	} else {
		contact := atum.Identity{ID: ids.NodeID(*contactID), Addr: *join}
		if err := rt.Join(node, contact); err != nil {
			log.Fatalf("atum-node: join: %v", err)
		}
		log.Printf("joining via n%d at %s ...", *contactID, *join)
		deadline := time.Now().Add(60 * time.Second)
		for !rt.IsMember(node) {
			if time.Now().After(deadline) {
				log.Fatal("atum-node: join timed out")
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Broadcast stdin lines until EOF or signal.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	for {
		select {
		case <-sig:
			log.Printf("shutting down")
			_ = rt.Leave(node)
			time.Sleep(500 * time.Millisecond)
			return
		case line, ok := <-lines:
			if !ok {
				log.Printf("stdin closed; staying online (ctrl-c to leave)")
				<-sig
				_ = rt.Leave(node)
				time.Sleep(500 * time.Millisecond)
				return
			}
			if line == "" {
				continue
			}
			if err := rt.BroadcastWith(node, []byte(line), atum.BroadcastOpts{}); err != nil {
				log.Printf("broadcast: %v", err)
			}
		}
	}
}

// lateTransport defers the transport binding (runtime is constructed first).
type lateTransport struct {
	tr *tcpnet.Transport
}

func (l *lateTransport) Send(from, to ids.NodeID, msg any) {
	if l.tr != nil {
		l.tr.Send(from, to, msg)
	}
}

func (l *lateTransport) LearnAddr(id ids.NodeID, addr string) {
	if l.tr != nil {
		l.tr.LearnAddr(id, addr)
	}
}

func (l *lateTransport) Close() error {
	if l.tr != nil {
		return l.tr.Close()
	}
	return nil
}
