// Package atum is a group communication middleware for large, dynamic, and
// hostile environments — a from-scratch Go implementation of "Atum: Scalable
// Group Communication Using Volatile Groups" (Guerraoui, Kermarrec, Pavlovic,
// Seredinschi — Middleware 2016).
//
// At its heart are volatile groups (vgroups): small, dynamic clusters of
// nodes, each running Byzantine fault-tolerant state machine replication,
// organized in an H-graph overlay. Faulty nodes are scattered evenly among
// vgroups by random-walk shuffling and masked inside their vgroup; vgroup
// sizes track the logarithm of the system size through splits and merges;
// messages are disseminated by gossiping group messages across the overlay.
//
// The public API mirrors the paper's §3.3:
//
//	node := atum.NewNode(cfg)            // create a node
//	node.Bootstrap()                     // first node: create the instance
//	node.Join(contact)                   // everyone else: join via a contact
//	node.BroadcastWith([]byte("hello"),
//		atum.BroadcastOpts{})            // disseminate to every node
//	node.Leave()                         // leave the system
//
// Applications receive messages through Callbacks.Deliver and shape the
// gossip phase through Callbacks.Forward. Three applications built on this
// API ship with the repository: asub (publish/subscribe), ashare (file
// sharing), and astream (data streaming).
//
// # Egress scheduling
//
// Every outbound send — gossip payloads (§3.3.4's dissemination phase),
// random-walk hops, neighbor and composition updates during churn, and
// registered application raw messages — feeds a unified per-destination
// egress scheduler (internal/egress): everything bound for the same
// destination within its flush window leaves as a single batch carrier,
// cutting per-link message counts and framing bytes by roughly the number
// of concurrent sends. Receivers unpack carriers and process every inner
// message individually, so Deliver, Forward, and OnRawMessage semantics are
// identical with batching on or off. The flush window is adaptive, derived
// per destination from the observed arrival rate: zero when idle (a lone
// broadcast on a quiet system pays no batching latency), widening under
// bursts up to a cap. Three Config knobs control the scheduler:
//
//   - GossipMaxBatch: items coalesced per destination (default 64;
//     1 disables batching and restores one message per send per link)
//   - GossipMaxBatchBytes: byte budget that forces an early flush
//     (default 256 KiB)
//   - EgressMaxFlushWindow: the adaptive window's cap (default 5 ms;
//     ModeSync group sends flush at every lockstep round tick instead)
//
// # Flow control
//
// The send surface is flow-controlled (docs/API.md): SendRaw returns typed
// errors instead of silently dropping, BroadcastWith/SendRawWith accept a
// priority class and a queue-residency TTL, node-addressed egress queues
// are bounded (Config.EgressQueueLimit) with a paced drain, and
// applications observe per-destination pressure through
// Callbacks.OnEgressPressure (Low/High/Critical, with hysteresis) and
// Node.EgressStats. AStream and AShare pace their floods off these signals
// instead of flooding blindly; `atum-bench -exp backpressure` measures the
// effect under a slow consumer.
//
// # Wire codec
//
// Payloads and engine messages are framed by a deterministic, tagged,
// versioned wire codec (docs/WIRE.md) rather than encoding/gob: canonical
// bytes for signatures and cross-member digest matching, no per-message
// type dictionary. Applications register their SendRaw message types in
// the codec's extension-tag range (RegisterRawMessage) to make them
// wire-codable — and thereby batchable — too; unregistered types ride the
// TCP transport's gob fallback as before. The legacy gob payload envelope
// was removed one release after the codec shipped (docs/WIRE.md migration
// notes).
//
// Nodes are actors: they run on a runtime that delivers messages and timers.
// Two runtimes are provided — the deterministic discrete-event simulator
// (atum.NewSimCluster, internal/simnet) used by the evaluation harness, and
// a real-time goroutine runtime (atum.NewRealtimeRuntime) for deployment.
package atum

import (
	"fmt"
	"time"

	"atum/internal/core"
	"atum/internal/crypto"
	"atum/internal/group"
	"atum/internal/ids"
	"atum/internal/simnet"
	"atum/internal/smr"
	"atum/internal/wire"
)

// Re-exported configuration and callback types (stable public aliases of
// the engine's types).
type (
	// Config configures one Atum node; see the field docs in internal/core.
	Config = core.Config
	// Params are the Table 1 overlay parameters (hc, rwl, gmin, gmax).
	Params = core.Params
	// Callbacks connect the application to the engine.
	Callbacks = core.Callbacks
	// Delivery is one delivered broadcast message.
	Delivery = core.Delivery
	// ForwardLink identifies an overlay link offered to the Forward callback.
	ForwardLink = core.ForwardLink
	// Event is an engine metrics event.
	Event = core.Event
	// EventKind enumerates engine metrics events.
	EventKind = core.EventKind
	// Behavior selects a node's (possibly Byzantine) behaviour.
	Behavior = core.Behavior
	// NodeID identifies a node.
	NodeID = ids.NodeID
	// GroupID identifies a vgroup.
	GroupID = ids.GroupID
	// Identity is a node's public identity.
	Identity = ids.Identity
	// GroupComposition is a vgroup's membership at one epoch (the value
	// handed to Callbacks.OnJoined).
	GroupComposition = group.Composition
	// BroadcastOpts are BroadcastWith's flow-control options.
	BroadcastOpts = core.BroadcastOpts
	// SendOpts are SendRawWith's flow-control options.
	SendOpts = core.SendOpts
	// Priority is a send's egress priority class (lower = more important).
	Priority = core.Priority
	// PressureLevel is a destination's egress pressure level.
	PressureLevel = core.PressureLevel
	// EgressStats is a snapshot of a node's egress scheduler.
	EgressStats = core.EgressStats
	// EgressDestStats is one destination's entry in EgressStats.
	EgressDestStats = core.EgressDestStats
)

// Typed send errors (see docs/API.md for the full error taxonomy).
var (
	// ErrNotMember: the sender is not currently a vgroup member.
	ErrNotMember = core.ErrNotMember
	// ErrBroadcastTooLarge: the payload exceeds MaxBroadcastBytes.
	ErrBroadcastTooLarge = core.ErrBroadcastTooLarge
	// ErrNotRunning: the node is not attached to a running runtime.
	ErrNotRunning = core.ErrNotRunning
	// ErrEgressOverflow: the destination's bounded egress queue dropped the
	// message at the sender (flow control).
	ErrEgressOverflow = core.ErrEgressOverflow
	// ErrUnregisteredType: Config.RequireRawCodec is set and the raw message
	// type has no wire codec (RegisterRawMessage).
	ErrUnregisteredType = core.ErrUnregisteredType
)

// Send priority classes.
const (
	// PriorityControl is protocol-critical traffic (the default).
	PriorityControl = core.PriorityControl
	// PriorityData is ordinary application payload traffic.
	PriorityData = core.PriorityData
	// PriorityBulk is best-effort bulk traffic: first to be shed.
	PriorityBulk = core.PriorityBulk
)

// Egress pressure levels (Callbacks.OnEgressPressure). Levels carry
// hysteresis — distinct enter and exit thresholds — so they signal sustained
// load changes, not noise (docs/API.md, "Pressure levels").
const (
	PressureLow      = core.PressureLow
	PressureHigh     = core.PressureHigh
	PressureCritical = core.PressureCritical
)

// Re-exported constants.
const (
	// ModeSync selects the synchronous Dolev-Strong SMR engine.
	ModeSync = smr.ModeSync
	// ModeAsync selects the asynchronous PBFT SMR engine.
	ModeAsync = smr.ModeAsync
	// BehaviorCorrect follows the protocol.
	BehaviorCorrect = core.BehaviorCorrect
	// BehaviorSilent joins, then goes completely quiet.
	BehaviorSilent = core.BehaviorSilent
	// BehaviorHeartbeatOnly heartbeats and proposes spurious evictions.
	BehaviorHeartbeatOnly = core.BehaviorHeartbeatOnly
)

// Re-exported engine event kinds.
const (
	// EventExchangeCompleted counts finished shuffle exchanges.
	EventExchangeCompleted = core.EventExchangeCompleted
	// EventExchangeSuppressed counts suppressed shuffle exchanges (Fig. 13).
	EventExchangeSuppressed = core.EventExchangeSuppressed
	// EventSplit counts vgroup splits.
	EventSplit = core.EventSplit
	// EventMerge counts vgroup merges.
	EventMerge = core.EventMerge
	// EventEviction counts evictions.
	EventEviction = core.EventEviction
	// EventShuffleDone counts completed whole-group shuffles.
	EventShuffleDone = core.EventShuffleDone
	// EventDuplicateDelivery counts gossip payloads accepted for broadcasts
	// the node had already delivered (the redundancy Config.TreeGossip
	// prunes away).
	EventDuplicateDelivery = core.EventDuplicateDelivery
)

// DefaultParams returns sensible Table 1 parameters for a medium system.
func DefaultParams() Params { return core.DefaultParams() }

// Wire codec primitives, re-exported for application raw-message codecs
// (RegisterRawMessage marshal/unmarshal callbacks).
type (
	// WireEncoder writes the engine's primitive wire encodings.
	WireEncoder = wire.Encoder
	// WireDecoder reads them back (error-latching; the envelope layer
	// checks the final state).
	WireDecoder = wire.Decoder
)

// RawMessageTagMin is the first wire-envelope kind tag of the application
// extension range (docs/WIRE.md): tags RawMessageTagMin..0xFF identify
// application raw-message types registered with RegisterRawMessage.
const RawMessageTagMin = core.RawTagMin

// RegisterRawMessage registers an application raw-message type under a wire
// extension tag. Registered types become wire-codable: SendRaw coalesces
// them per destination on the egress scheduler (batch carriers instead of
// one message per send), and byte-level transports frame them through the
// deterministic wire codec instead of the gob fallback. Tags are process-
// wide, append-only wire contracts — see docs/WIRE.md for the assignments
// in use. Registration panics on tag or type conflicts; re-registering the
// same pair is a no-op.
func RegisterRawMessage(tag byte, prototype any, marshal func(v any, e *WireEncoder), unmarshal func(d *WireDecoder) any) {
	core.RegisterRawMessage(tag, prototype, marshal, unmarshal)
}

// Node is one Atum participant.
type Node struct {
	inner *core.Node
}

// NewNode creates a node from its configuration. Hand the node to a runtime
// (SimCluster or RealtimeRuntime) before calling Bootstrap or Join.
func NewNode(cfg Config) *Node { return &Node{inner: core.New(cfg)} }

// Bootstrap creates a new Atum instance with this node as the only member.
func (n *Node) Bootstrap() error { return n.inner.Bootstrap() }

// Join joins an existing instance through a trusted contact node.
func (n *Node) Join(contact Identity) error { return n.inner.Join(contact) }

// Leave requests removal from the system.
func (n *Node) Leave() error { return n.inner.Leave() }

// BroadcastWith disseminates data to every node in the system, with
// flow-control options: a priority class and an optional TTL bounding how
// long the origin's first-hop gossip items may wait in its egress queues
// before being dropped as stale (see docs/API.md; remote forwarders use
// defaults). BroadcastOpts{} gives the paper's zero-option behaviour; the
// former Broadcast(data) wrapper was removed in the scheduled API-breaking
// release ("Migration from the zero-option signatures" in docs/API.md).
func (n *Node) BroadcastWith(data []byte, opts BroadcastOpts) error {
	return n.inner.BroadcastWith(data, opts)
}

// Identity returns this node's identity (with public key).
func (n *Node) Identity() Identity { return n.inner.Identity() }

// IsMember reports whether the node currently belongs to a vgroup.
func (n *Node) IsMember() bool { return n.inner.IsMember() }

// GroupSize returns the node's current vgroup size (0 if not a member).
func (n *Node) GroupSize() int { return n.inner.Comp().N() }

// GroupMembers returns a copy of the node's current vgroup member
// identities: callers may keep or mutate the slice freely without touching
// engine state.
func (n *Node) GroupMembers() []Identity { return n.inner.Comp().Members }

// SendRawWith sends an application-level message to another node
// (delivered to its Config.OnRawMessage hook), with flow-control options
// (priority class, egress queue-residency TTL); SendOpts{} means defaults.
// It reports failures instead of silently dropping — ErrNotRunning,
// ErrEgressOverflow, ErrUnregisteredType (see docs/API.md). The former
// SendRaw(to, msg) wrapper was removed in the scheduled API-breaking
// release ("Migration from the zero-option signatures" in docs/API.md).
func (n *Node) SendRawWith(to NodeID, msg any, opts SendOpts) error {
	return n.inner.SendRawWith(to, msg, opts)
}

// EgressStats returns a snapshot of the node's egress scheduler: per-
// destination queue depth, pressure level, smoothed arrival gap, and drop
// counters. Call from the node's actor context (in simulation, harness code
// between Run calls is also safe; under RealtimeRuntime use its EgressStats
// wrapper).
func (n *Node) EgressStats() EgressStats { return n.inner.EgressStats() }

// Now returns the node's clock (virtual under simulation).
func (n *Node) Now() time.Duration { return n.inner.Now() }

// SetTreeGossip toggles the dissemination tree over the gossip phase at
// runtime (see Config.TreeGossip).
func (n *Node) SetTreeGossip(v bool) { n.inner.SetTreeGossip(v) }

// TreeEager reports whether the overlay link to the given neighbor vgroup
// is currently an eager dissemination-tree edge (always true while the
// tree is disabled). Tier-2 layers use it to pick forest parents.
func (n *Node) TreeEager(gid GroupID) bool { return n.inner.TreeEagerLink(gid) }

// Inner exposes the engine node for advanced integrations (applications in
// this module and the experiment harness).
func (n *Node) Inner() *core.Node { return n.inner }

// --- simulated cluster runtime ---

// SimCluster runs Atum nodes on the deterministic discrete-event simulator:
// the default way to experiment with Atum on one machine and the substrate
// of the evaluation harness.
type SimCluster struct {
	Net    *simnet.Network
	nextID uint64
	mode   smr.Mode
	tweak  func(*Config)
}

// SimOptions configures a SimCluster.
type SimOptions struct {
	// Seed makes runs reproducible.
	Seed int64
	// Mode selects the SMR engine (default ModeSync).
	Mode smr.Mode
	// NetConfig overrides the simulated network configuration.
	NetConfig *simnet.Config
	// Tweak, when set, adjusts each node's Config before creation.
	Tweak func(*Config)
}

// NewSimCluster creates an empty simulated cluster.
func NewSimCluster(opts SimOptions) *SimCluster {
	if opts.Mode == 0 {
		opts.Mode = smr.ModeSync
	}
	nc := simnet.Config{Seed: opts.Seed, Latency: simnet.LANLatency()}
	if opts.NetConfig != nil {
		nc = *opts.NetConfig
	}
	return &SimCluster{Net: simnet.New(nc), mode: opts.Mode, tweak: opts.Tweak}
}

// AddNode creates a node with test-friendly fast timers, registers it with
// the simulated network, and returns it.
func (c *SimCluster) AddNode(cb Callbacks) *Node { return c.AddNodeWith(cb, nil) }

// AddNodeWith is AddNode with a per-node config mutation (applications use
// it to install their OnRawMessage hook).
func (c *SimCluster) AddNodeWith(cb Callbacks, mut func(*Config)) *Node {
	c.nextID++
	id := ids.NodeID(c.nextID)
	cfg := Config{
		Identity:       Identity{ID: id, Addr: fmt.Sprintf("sim:%d", id)},
		SignerSeed:     []byte(fmt.Sprintf("sim-node-%d", id)),
		Scheme:         crypto.SimScheme{},
		Mode:           c.mode,
		Params:         Params{HC: 3, RWL: 4, GMax: 8, GMin: 4},
		RoundDuration:  100 * time.Millisecond,
		HeartbeatEvery: time.Second,
		EvictAfter:     6 * time.Second,
		WalkTimeout:    5 * time.Second,
		JoinTimeout:    10 * time.Second,
		RequestTimeout: time.Second,
		Callbacks:      cb,
	}
	if c.tweak != nil {
		c.tweak(&cfg)
	}
	if mut != nil {
		mut(&cfg)
	}
	n := NewNode(cfg)
	c.Net.Add(id, n.inner)
	return n
}

// Run advances virtual time by d.
func (c *SimCluster) Run(d time.Duration) { c.Net.Run(c.Net.Now() + d) }

// RunUntil advances virtual time in small steps until cond holds or the
// deadline passes; it reports whether cond held. If cond already holds it
// returns true without advancing time, and it never advances past
// Now()+max — the final step is clamped to the deadline exactly, so events
// scheduled at the deadline still count.
func (c *SimCluster) RunUntil(cond func() bool, max time.Duration) bool {
	deadline := c.Net.Now() + max
	for !cond() && c.Net.Now() < deadline {
		step := c.Net.Now() + 50*time.Millisecond
		if step > deadline {
			step = deadline
		}
		c.Net.Run(step)
	}
	return cond()
}

// Now returns the cluster's virtual time.
func (c *SimCluster) Now() time.Duration { return c.Net.Now() }
