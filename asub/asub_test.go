package asub_test

import (
	"testing"
	"time"

	"atum"
	"atum/asub"
)

func TestTopicLifecycle(t *testing.T) {
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 21})
	events := make(map[int][]asub.Event)
	var parts []*asub.Participant
	for i := 0; i < 3; i++ {
		idx := i
		cb, bind := asub.Wire("news", asub.Options{
			OnEvent: func(ev asub.Event) { events[idx] = append(events[idx], ev) },
		})
		n := cluster.AddNode(cb)
		parts = append(parts, bind(n))
	}
	cluster.Run(10 * time.Millisecond)

	if err := parts[0].CreateTopic(); err != nil {
		t.Fatal(err)
	}
	if parts[0].Topic() != "news" {
		t.Errorf("Topic = %q", parts[0].Topic())
	}
	for _, p := range parts[1:] {
		if err := p.Subscribe(parts[0].Identity()); err != nil {
			t.Fatal(err)
		}
		if !cluster.RunUntil(p.Subscribed, time.Minute) {
			t.Fatal("subscribe timed out")
		}
	}
	if err := parts[1].Publish([]byte("breaking")); err != nil {
		t.Fatal(err)
	}
	cluster.Run(15 * time.Second)
	for i := 0; i < 3; i++ {
		if len(events[i]) != 1 || string(events[i][0].Data) != "breaking" {
			t.Errorf("participant %d events = %v", i, events[i])
		}
	}
	// Unsubscribe stops delivery.
	if err := parts[2].Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	cluster.RunUntil(func() bool { return !parts[2].Subscribed() }, time.Minute)
	if err := parts[0].Publish([]byte("second")); err != nil {
		t.Fatal(err)
	}
	cluster.Run(15 * time.Second)
	if len(events[2]) != 1 {
		t.Errorf("unsubscribed participant received %d events, want 1", len(events[2]))
	}
	if len(events[0]) != 2 {
		t.Errorf("subscribed participant received %d events, want 2", len(events[0]))
	}
}
