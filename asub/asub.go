// Package asub is ASub, the topic-based publish/subscribe service of paper
// §4.1, layered on Atum.
//
// Topic-based pub/sub is essentially equivalent to group communication: a
// topic is a group, subscribing is joining, publishing is broadcasting. ASub
// is therefore a thin veneer: CreateTopic maps to Bootstrap, Subscribe to
// Join, Unsubscribe to Leave, and Publish to Broadcast.
package asub

import (
	"atum"
)

// Event is one published event delivered to a subscriber.
type Event struct {
	Topic     string
	Publisher atum.NodeID
	Data      []byte
}

// Participant is one node's handle on a topic.
type Participant struct {
	topic string
	node  *atum.Node
}

// Options configures a participant.
type Options struct {
	// OnEvent receives published events (required to observe anything).
	OnEvent func(Event)
}

// New wraps an Atum configuration for the given topic and returns the node
// callbacks plus the participant handle. The caller supplies the Atum node
// (so the application controls the runtime); wire it like:
//
//	var p *asub.Participant
//	cfg.Callbacks = asub.Wire(topic, opts, &p̂...)
type wiring struct {
	opts  Options
	topic string
}

// Wire returns Atum callbacks that deliver ASub events, and a constructor
// that binds the participant once the node exists.
func Wire(topic string, opts Options) (atum.Callbacks, func(*atum.Node) *Participant) {
	w := &wiring{opts: opts, topic: topic}
	cb := atum.Callbacks{
		Deliver: func(d atum.Delivery) {
			if w.opts.OnEvent != nil {
				w.opts.OnEvent(Event{Topic: topic, Publisher: d.Origin, Data: d.Data})
			}
		},
	}
	return cb, func(n *atum.Node) *Participant {
		return &Participant{topic: topic, node: n}
	}
}

// Topic returns the participant's topic.
func (p *Participant) Topic() string { return p.topic }

// CreateTopic creates the topic (Atum bootstrap): the caller becomes the
// topic's first subscriber and the contact point for others.
func (p *Participant) CreateTopic() error { return p.node.Bootstrap() }

// Subscribe joins the topic through any existing subscriber.
func (p *Participant) Subscribe(contact atum.Identity) error { return p.node.Join(contact) }

// Unsubscribe leaves the topic.
func (p *Participant) Unsubscribe() error { return p.node.Leave() }

// Publish broadcasts an event to every subscriber of the topic. Errors are
// the broadcast surface's typed errors (docs/API.md): atum.ErrNotMember
// when the participant is not (yet or anymore) subscribed, and
// atum.ErrBroadcastTooLarge for oversized events — check with errors.Is and
// re-publish after Subscribe completes, rather than assuming the event went
// out.
func (p *Participant) Publish(data []byte) error {
	return p.node.BroadcastWith(data, atum.BroadcastOpts{})
}

// PublishWith is Publish with flow-control options: a priority class and an
// egress TTL for the publisher's first-hop gossip (atum.BroadcastOpts).
// Time-critical feeds publish with a TTL so a congested publisher sheds
// stale events at the source instead of delivering them late everywhere.
func (p *Participant) PublishWith(data []byte, opts atum.BroadcastOpts) error {
	return p.node.BroadcastWith(data, opts)
}

// Subscribed reports whether the participant currently receives events.
func (p *Participant) Subscribed() bool { return p.node.IsMember() }

// Identity returns the participant's node identity (usable as a contact).
func (p *Participant) Identity() atum.Identity { return p.node.Identity() }
