package asub_test

// Publisher-error path tests for the flow-controlled send surface: Publish
// reports typed errors instead of silently losing events, and PublishWith
// carries the broadcast flow-control options.

import (
	"errors"
	"testing"
	"time"

	"atum"
	"atum/asub"
	"atum/internal/core"
)

func TestPublisherErrorsSurfaced(t *testing.T) {
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 31})
	var got []asub.Event
	cb, bind := asub.Wire("errors", asub.Options{
		OnEvent: func(ev asub.Event) { got = append(got, ev) },
	})
	p := bind(cluster.AddNode(cb))
	cluster.Run(10 * time.Millisecond)

	// Publishing before the topic exists (not a member yet) is a typed,
	// matchable error — not a silent no-op.
	if err := p.Publish([]byte("too-early")); !errors.Is(err, atum.ErrNotMember) {
		t.Fatalf("Publish before CreateTopic returned %v, want ErrNotMember", err)
	}
	if err := p.CreateTopic(); err != nil {
		t.Fatal(err)
	}
	// Oversized events are refused at the publisher, before any dissemination.
	huge := make([]byte, core.MaxBroadcastBytes+1)
	if err := p.Publish(huge); !errors.Is(err, atum.ErrBroadcastTooLarge) {
		t.Fatalf("oversized Publish returned %v, want ErrBroadcastTooLarge", err)
	}
	// A real publish — including one with flow-control options — succeeds
	// and delivers.
	if err := p.Publish([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	if err := p.PublishWith([]byte("optioned"), atum.BroadcastOpts{
		Priority: atum.PriorityData, TTL: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	cluster.Run(10 * time.Second)
	if len(got) != 2 || string(got[0].Data) != "plain" || string(got[1].Data) != "optioned" {
		t.Fatalf("delivered events = %v, want [plain optioned]", got)
	}
	// The failed publishes must not have produced events.
	for _, ev := range got {
		if string(ev.Data) == "too-early" || len(ev.Data) > core.MaxBroadcastBytes {
			t.Fatalf("failed publish leaked an event: %q", ev.Data[:32])
		}
	}
}
