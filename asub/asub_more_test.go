package asub_test

// Additional ASub coverage: independent topics as independent Atum
// instances, many-subscriber fan-out, publisher ordering, and resubscribe
// after unsubscribe.

import (
	"fmt"
	"testing"
	"time"

	"atum"
	"atum/asub"
)

// topicCluster builds n participants for one topic on a fresh cluster.
func topicCluster(t *testing.T, cluster *atum.SimCluster, topic string, n int) ([]*asub.Participant, map[int][]asub.Event) {
	t.Helper()
	events := make(map[int][]asub.Event)
	var parts []*asub.Participant
	for i := 0; i < n; i++ {
		idx := i
		cb, bind := asub.Wire(topic, asub.Options{
			OnEvent: func(ev asub.Event) { events[idx] = append(events[idx], ev) },
		})
		node := cluster.AddNode(cb)
		parts = append(parts, bind(node))
	}
	cluster.Run(10 * time.Millisecond)
	if err := parts[0].CreateTopic(); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts[1:] {
		if err := p.Subscribe(parts[0].Identity()); err != nil {
			t.Fatal(err)
		}
		if !cluster.RunUntil(p.Subscribed, 2*time.Minute) {
			t.Fatal("subscribe timed out")
		}
	}
	return parts, events
}

func TestTwoTopicsAreIsolated(t *testing.T) {
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 33})
	newsParts, newsEvents := topicCluster(t, cluster, "news", 3)
	sportParts, sportEvents := topicCluster(t, cluster, "sport", 3)

	if err := newsParts[0].Publish([]byte("election")); err != nil {
		t.Fatal(err)
	}
	if err := sportParts[0].Publish([]byte("final score")); err != nil {
		t.Fatal(err)
	}
	cluster.Run(15 * time.Second)

	for i := 0; i < 3; i++ {
		if len(newsEvents[i]) != 1 || string(newsEvents[i][0].Data) != "election" {
			t.Errorf("news participant %d got %v", i, newsEvents[i])
		}
		if len(sportEvents[i]) != 1 || string(sportEvents[i][0].Data) != "final score" {
			t.Errorf("sport participant %d got %v", i, sportEvents[i])
		}
	}
}

func TestManySubscribersFanOut(t *testing.T) {
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 34})
	parts, events := topicCluster(t, cluster, "wide", 10)

	if err := parts[3].Publish([]byte("to everyone")); err != nil {
		t.Fatal(err)
	}
	ok := cluster.RunUntil(func() bool {
		for i := range parts {
			if len(events[i]) == 0 {
				return false
			}
		}
		return true
	}, time.Minute)
	if !ok {
		delivered := 0
		for i := range parts {
			if len(events[i]) > 0 {
				delivered++
			}
		}
		t.Fatalf("event reached %d/%d subscribers", delivered, len(parts))
	}
}

func TestPublisherEventsArriveExactlyOnce(t *testing.T) {
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 35})
	parts, events := topicCluster(t, cluster, "once", 4)

	const total = 5
	for i := 0; i < total; i++ {
		if err := parts[0].Publish([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
		cluster.Run(5 * time.Second)
	}
	cluster.Run(20 * time.Second)
	for i := range parts {
		if len(events[i]) != total {
			t.Fatalf("participant %d delivered %d events, want %d", i, len(events[i]), total)
		}
		seen := make(map[string]bool)
		for _, ev := range events[i] {
			if seen[string(ev.Data)] {
				t.Fatalf("participant %d delivered %q twice", i, ev.Data)
			}
			seen[string(ev.Data)] = true
		}
	}
}

func TestResubscribeAfterUnsubscribe(t *testing.T) {
	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 36})
	parts, events := topicCluster(t, cluster, "return", 4)

	leaver := parts[3]
	if err := leaver.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if !cluster.RunUntil(func() bool { return !leaver.Subscribed() }, time.Minute) {
		t.Fatal("unsubscribe timed out")
	}
	if err := parts[0].Publish([]byte("while away")); err != nil {
		t.Fatal(err)
	}
	cluster.Run(10 * time.Second)

	if err := leaver.Subscribe(parts[0].Identity()); err != nil {
		t.Fatal(err)
	}
	if !cluster.RunUntil(leaver.Subscribed, 2*time.Minute) {
		t.Fatal("resubscribe timed out")
	}
	if err := parts[1].Publish([]byte("welcome back")); err != nil {
		t.Fatal(err)
	}
	ok := cluster.RunUntil(func() bool {
		for _, ev := range events[3] {
			if string(ev.Data) == "welcome back" {
				return true
			}
		}
		return false
	}, time.Minute)
	if !ok {
		t.Fatalf("returning subscriber missed the new event: %v", events[3])
	}
	for _, ev := range events[3] {
		if string(ev.Data) == "while away" {
			t.Fatal("unsubscribed participant received a topic event")
		}
	}
}
