package atum_test

// One benchmark per table and figure of the paper's evaluation (§6), at
// smoke scale; cmd/atum-bench runs the same experiments at paper-like scale.
// Benchmarks report the regenerated rows through b.Log (-v) and custom
// metrics where meaningful.

import (
	"testing"
	"time"

	"atum/internal/experiment"
	"atum/internal/smr"
)

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.Table1().String()
	}
}

func BenchmarkRobustnessModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Robustness([]int{200, 1000, 5000}, []int{3, 4, 5, 6, 7}, 0.06, smr.ModeSync)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig4WalkUniformity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig4([]int{8, 32}, []int{2, 4, 6}, 10, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig6Growth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig6(smr.ModeSync, 16, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig7Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig7(smr.ModeSync, []int{10}, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig8Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig8(smr.ModeSync, 12, 0, 3, 1500*time.Millisecond, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig8LatencyByzantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig8(smr.ModeSync, 12, 1, 3, 1500*time.Millisecond, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig9Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig9([]int{2, 8}, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig10Corrupt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig10(4, []int{8, 12}, 4, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig11CorruptLarger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig10(4, []int{8, 12}, 4, int64(i+2))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig12Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig12(8, 5, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkGossipBatching compares the dissemination hot path (§3.3.4) with
// per-destination gossip batching on vs off: 8 concurrent publishers on a
// settled 24-node simnet system. The batched configuration must send fewer
// group messages and fewer wire bytes per broadcast (asserted by
// experiment.TestBatchingReducesTraffic); the table reports the numbers.
func BenchmarkGossipBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unbatched, err := experiment.BatchingRun(24, 8, 3, false, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		batched, err := experiment.BatchingRun(24, 8, 3, true, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\nunbatched: %.0f msgs/bcast, %.0f B/bcast, delivered %.2f"+
				"\nbatched:   %.0f msgs/bcast, %.0f B/bcast, delivered %.2f",
				unbatched.MsgsPerBcast, unbatched.BytesPerBcast, unbatched.Delivered,
				batched.MsgsPerBcast, batched.BytesPerBcast, batched.Delivered)
			b.ReportMetric(batched.MsgsPerBcast, "batched-msgs/bcast")
			b.ReportMetric(unbatched.MsgsPerBcast, "unbatched-msgs/bcast")
			b.ReportMetric(batched.BytesPerBcast, "batched-B/bcast")
			b.ReportMetric(unbatched.BytesPerBcast, "unbatched-B/bcast")
		}
	}
}

func BenchmarkFig13Exchanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig13(14, []int{8, 24}, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}
