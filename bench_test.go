package atum_test

// One benchmark per table and figure of the paper's evaluation (§6), at
// smoke scale; cmd/atum-bench runs the same experiments at paper-like scale.
// Benchmarks report the regenerated rows through b.Log (-v) and custom
// metrics where meaningful.

import (
	"testing"
	"time"

	"atum/internal/experiment"
	"atum/internal/smr"
)

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiment.Table1().String()
	}
}

func BenchmarkRobustnessModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Robustness([]int{200, 1000, 5000}, []int{3, 4, 5, 6, 7}, 0.06, smr.ModeSync)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig4WalkUniformity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig4([]int{8, 32}, []int{2, 4, 6}, 10, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig6Growth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig6(smr.ModeSync, 16, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig7Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig7(smr.ModeSync, []int{10}, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig8Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig8(smr.ModeSync, 12, 0, 3, 1500*time.Millisecond, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig8LatencyByzantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig8(smr.ModeSync, 12, 1, 3, 1500*time.Millisecond, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig9Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig9([]int{2, 8}, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig10Corrupt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig10(4, []int{8, 12}, 4, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig11CorruptLarger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig10(4, []int{8, 12}, 4, int64(i+2))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig12Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig12(8, 5, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig13Exchanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Fig13(14, []int{8, 24}, int64(i+1))
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}
