package atum_test

// Surface-contract tests for the public API: accessor aliasing (returned
// slices must be copies, not views into engine state), typed send errors at
// the atum layer, and SimCluster.RunUntil edge cases.

import (
	"errors"
	"testing"
	"time"

	"atum"
	"atum/internal/crypto"
)

// TestGroupMembersNotAliased: mutating the slice returned by GroupMembers
// (including the nested PubKey bytes) must not corrupt engine state.
func TestGroupMembersNotAliased(t *testing.T) {
	c := atum.NewSimCluster(atum.SimOptions{Seed: 11})
	n := c.AddNode(atum.Callbacks{Deliver: func(atum.Delivery) {}})
	c.Run(10 * time.Millisecond)
	if err := n.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	members := n.GroupMembers()
	if len(members) != 1 {
		t.Fatalf("bootstrap group has %d members", len(members))
	}
	members[0].ID = 0xDEAD
	members[0].Addr = "corrupted"
	for i := range members[0].PubKey {
		members[0].PubKey[i] = 0xFF
	}
	fresh := n.GroupMembers()
	if fresh[0].ID != n.Identity().ID || fresh[0].Addr == "corrupted" {
		t.Fatalf("engine state corrupted through GroupMembers: %+v", fresh[0])
	}
	for i, b := range fresh[0].PubKey {
		if b != n.Identity().PubKey[i] {
			t.Fatal("engine PubKey corrupted through GroupMembers aliasing")
		}
	}
	if n.GroupSize() != 1 {
		t.Fatalf("group size changed to %d", n.GroupSize())
	}
}

// TestSendErrorsSurfaceAtPublicAPI: the typed send errors cross the atum
// wrapper layer intact (errors.Is-matchable re-exports).
func TestSendErrorsSurfaceAtPublicAPI(t *testing.T) {
	c := atum.NewSimCluster(atum.SimOptions{Seed: 12})
	n := c.AddNode(atum.Callbacks{Deliver: func(atum.Delivery) {}})
	// Not yet a member: broadcast refuses.
	if err := n.BroadcastWith([]byte("x"), atum.BroadcastOpts{}); !errors.Is(err, atum.ErrNotMember) {
		t.Fatalf("Broadcast before membership returned %v, want ErrNotMember", err)
	}
	// Node created but runtime not started: raw sends refuse instead of
	// silently dropping.
	free := atum.NewNode(atum.Config{
		Identity:   atum.Identity{ID: 7, Addr: "sim:7"},
		SignerSeed: []byte("free-node"),
		Scheme:     crypto.SimScheme{},
		Mode:       atum.ModeSync,
	})
	if err := free.SendRawWith(1, struct{}{}, atum.SendOpts{}); !errors.Is(err, atum.ErrNotRunning) {
		t.Fatalf("SendRaw without a runtime returned %v, want ErrNotRunning", err)
	}
}

// TestRunUntilCondAlreadyTrue: a satisfied condition returns immediately
// without advancing virtual time.
func TestRunUntilCondAlreadyTrue(t *testing.T) {
	c := atum.NewSimCluster(atum.SimOptions{Seed: 13})
	c.Run(time.Second)
	before := c.Now()
	if !c.RunUntil(func() bool { return true }, time.Minute) {
		t.Fatal("RunUntil returned false for an already-true condition")
	}
	if c.Now() != before {
		t.Fatalf("RunUntil advanced time %v -> %v for an already-true condition", before, c.Now())
	}
}

// TestRunUntilClampsToDeadline: a never-true condition consumes exactly the
// budget — the last step is clamped, not overshot in 50 ms chunks.
func TestRunUntilClampsToDeadline(t *testing.T) {
	c := atum.NewSimCluster(atum.SimOptions{Seed: 14})
	start := c.Now()
	const max = 130 * time.Millisecond // not a multiple of the 50 ms step
	if c.RunUntil(func() bool { return false }, max) {
		t.Fatal("RunUntil returned true for a never-true condition")
	}
	if got := c.Now() - start; got != max {
		t.Fatalf("RunUntil advanced %v, want exactly %v", got, max)
	}
}

// TestRunUntilSeesDeadlineInstant: an event scheduled exactly at the
// deadline still runs, and a condition it satisfies counts as met.
func TestRunUntilSeesDeadlineInstant(t *testing.T) {
	c := atum.NewSimCluster(atum.SimOptions{Seed: 15})
	const max = 175 * time.Millisecond
	fired := false
	c.Net.Schedule(c.Now()+max, func() { fired = true })
	if !c.RunUntil(func() bool { return fired }, max) {
		t.Fatal("RunUntil missed a condition satisfied exactly at the deadline")
	}
}
