package atum_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each one
// measures the system with a mechanism enabled vs disabled, reporting the
// protocol-level quantity the mechanism is supposed to improve (virtual
// time and message cost — not host CPU, which is what ns/op would show).
//
//	go test -bench 'BenchmarkAblation' -benchtime 3x

import (
	"fmt"
	"testing"
	"time"

	"atum"
	"atum/internal/core"
)

// growCluster bootstraps one node and joins count-1 more through it,
// returning the cluster and the virtual time consumed.
func growCluster(b *testing.B, opts atum.SimOptions, count int) (*atum.SimCluster, []*atum.Node, time.Duration) {
	b.Helper()
	c := atum.NewSimCluster(opts)
	nodes := make([]*atum.Node, 0, count)
	first := c.AddNode(atum.Callbacks{Deliver: func(atum.Delivery) {}})
	c.Run(10 * time.Millisecond)
	if err := first.Bootstrap(); err != nil {
		b.Fatal(err)
	}
	nodes = append(nodes, first)
	start := c.Now()
	contact := first.Identity()
	for i := 1; i < count; i++ {
		n := c.AddNode(atum.Callbacks{Deliver: func(atum.Delivery) {}})
		if err := n.Join(contact); err != nil {
			b.Fatal(err)
		}
		if !c.RunUntil(n.IsMember, 120*time.Second) {
			b.Fatalf("node %d failed to join", i)
		}
		nodes = append(nodes, n)
	}
	return c, nodes, c.Now() - start
}

// BenchmarkAblationShuffle compares system growth with random walk shuffling
// enabled (the paper's design: every join refreshes the vgroup) and disabled
// (flexibility without the robustness maintenance). Shuffling costs growth
// speed — the flexibility/robustness trade-off of §7 and Fig. 13.
func BenchmarkAblationShuffle(b *testing.B) {
	const n = 14
	for _, disabled := range []bool{false, true} {
		name := "shuffle=on"
		if disabled {
			name = "shuffle=off"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			var completed, suppressed int
			for i := 0; i < b.N; i++ {
				opts := atum.SimOptions{
					Seed: int64(i + 1),
					Tweak: func(cfg *atum.Config) {
						cfg.DisableShuffle = disabled
						cfg.Params = atum.Params{HC: 3, RWL: 4, GMax: 4, GMin: 2}
						cfg.Callbacks.OnEvent = func(ev atum.Event) {
							switch ev.Kind {
							case atum.EventExchangeCompleted:
								completed++
							case atum.EventExchangeSuppressed:
								suppressed++
							}
						}
					},
				}
				_, _, growth := growCluster(b, opts, n)
				total += growth
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "virtual_ms_to_grow")
			b.ReportMetric(float64(completed)/float64(b.N), "exchanges_completed")
			b.ReportMetric(float64(suppressed)/float64(b.N), "exchanges_suppressed")
		})
	}
}

// BenchmarkAblationWalkReply compares the two §5.1 walk-reply mechanisms:
// the backward phase (result relayed through the visited vgroups) and
// certificate chains (direct reply, chain size linear in rwl). Certificates
// save relay hops at the price of bigger messages.
func BenchmarkAblationWalkReply(b *testing.B) {
	const n = 12
	for _, mode := range []core.WalkReplyMode{core.ReplyBackward, core.ReplyCertificates} {
		b.Run(fmt.Sprintf("mode=%v", mode), func(b *testing.B) {
			var totalVirtual time.Duration
			var totalBytes, totalMsgs int64
			for i := 0; i < b.N; i++ {
				opts := atum.SimOptions{
					Seed:  int64(i + 1),
					Tweak: func(cfg *atum.Config) { cfg.ReplyMode = mode },
				}
				c, _, growth := growCluster(b, opts, n)
				totalVirtual += growth
				st := c.Net.Stats()
				totalBytes += st.BytesSent
				totalMsgs += st.Sent
			}
			b.ReportMetric(float64(totalVirtual.Milliseconds())/float64(b.N), "virtual_ms_to_grow")
			b.ReportMetric(float64(totalBytes)/float64(b.N)/float64(n), "bytes_per_node")
			b.ReportMetric(float64(totalMsgs)/float64(b.N)/float64(n), "msgs_per_node")
		})
	}
}

// BenchmarkAblationForwardFanout compares broadcast dissemination with the
// default flooding Forward callback (gossip on all H-graph cycles — the
// latency-optimized choice) against single-cycle forwarding (the
// throughput-optimized choice AStream uses), measuring delivery latency
// (§3.3.4).
func BenchmarkAblationForwardFanout(b *testing.B) {
	const n = 18
	for _, single := range []bool{false, true} {
		name := "forward=flood"
		if single {
			name = "forward=cycle0"
		}
		b.Run(name, func(b *testing.B) {
			var totalLast time.Duration
			var totalMsgs int64
			for i := 0; i < b.N; i++ {
				delivered := make(map[uint64]time.Duration)
				var cl *atum.SimCluster
				opts := atum.SimOptions{
					Seed: int64(i + 1),
					Tweak: func(cfg *atum.Config) {
						// Small vgroups so the overlay has enough vertices
						// for cycle choice to matter (~6 vgroups at N=18).
						cfg.Params = atum.Params{HC: 3, RWL: 4, GMax: 4, GMin: 2}
						id := uint64(cfg.Identity.ID)
						cfg.Callbacks.Deliver = func(atum.Delivery) {
							if _, ok := delivered[id]; !ok {
								delivered[id] = cl.Now()
							}
						}
						if single {
							cfg.Callbacks.Forward = func(d atum.Delivery, link atum.ForwardLink) bool {
								return link.Cycle == 0
							}
						}
					},
				}
				c, nodes, _ := growCluster(b, opts, n)
				cl = c
				before := c.Net.Stats().Sent
				start := c.Now()
				if err := nodes[0].BroadcastWith([]byte("ablate"), atum.BroadcastOpts{}); err != nil {
					b.Fatal(err)
				}
				c.RunUntil(func() bool {
					live := 0
					for _, nd := range nodes {
						if nd.IsMember() {
							live++
						}
					}
					return len(delivered) >= live
				}, 120*time.Second)
				last := time.Duration(0)
				for _, at := range delivered {
					if at-start > last {
						last = at - start
					}
				}
				totalLast += last
				totalMsgs += c.Net.Stats().Sent - before
			}
			b.ReportMetric(float64(totalLast.Milliseconds())/float64(b.N), "virtual_ms_last_delivery")
			b.ReportMetric(float64(totalMsgs)/float64(b.N), "msgs_per_broadcast")
		})
	}
}
