package atum_test

import (
	"runtime"
	"testing"
	"time"

	"atum"
)

// The goroutine-leak harness backstops the actorconfine analyzer at
// runtime: the engine itself must never spawn goroutines (its state is
// actor-confined), and the runtimes that do spawn them (rtnet mailbox
// loops, timers) must reap every one on node removal and runtime close.
// Each test snapshots the goroutine count before building a cluster,
// drives the full node lifecycle, tears everything down, and requires
// the count to settle back to the baseline.

// settleGoroutines polls until the live goroutine count drops back to
// base (runtime teardown is asynchronous: mailbox loops drain their
// final events after Close returns) and fails with a full stack dump of
// the survivors if it never does.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d at baseline, %d after teardown; stacks:\n%s",
		base, n, buf[:runtime.Stack(buf, true)])
}

// TestNoGoroutineLeakSimCluster runs the quickstart example's flow —
// bootstrap, four joins through a contact, one broadcast delivered
// everywhere — on the in-process simulator and requires that the whole
// run spawns no goroutines at all: the simulated engine is strictly
// single-threaded, which is exactly the invariant actorconfine encodes.
func TestNoGoroutineLeakSimCluster(t *testing.T) {
	base := runtime.NumGoroutine()

	cluster := atum.NewSimCluster(atum.SimOptions{Seed: 42})
	delivered := make(map[atum.NodeID]string)
	var nodes []*atum.Node
	for i := 0; i < 5; i++ {
		var n *atum.Node
		n = cluster.AddNode(atum.Callbacks{
			Deliver: func(d atum.Delivery) { delivered[n.Identity().ID] = string(d.Data) },
		})
		nodes = append(nodes, n)
	}
	cluster.Run(10 * time.Millisecond)
	if err := nodes[0].Bootstrap(); err != nil {
		t.Fatal(err)
	}
	contact := nodes[0].Identity()
	for _, n := range nodes[1:] {
		if err := n.Join(contact); err != nil {
			t.Fatal(err)
		}
		if !cluster.RunUntil(n.IsMember, time.Minute) {
			t.Fatalf("node %v did not join", n.Identity().ID)
		}
	}
	if err := nodes[2].BroadcastWith([]byte("leak-probe"), atum.BroadcastOpts{}); err != nil {
		t.Fatal(err)
	}
	cluster.Run(10 * time.Second)
	for _, n := range nodes {
		if delivered[n.Identity().ID] != "leak-probe" {
			t.Fatalf("node %v delivered %q", n.Identity().ID, delivered[n.Identity().ID])
		}
	}

	settleGoroutines(t, base)
}

// TestNoGoroutineLeakRealtime drives the wall-clock runtime through the
// full node lifecycle — add, bootstrap, join, broadcast, remove one node
// mid-flight, close the runtime — and requires every runtime goroutine
// (one mailbox loop per node, plus timers) to be reaped.
func TestNoGoroutineLeakRealtime(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test (seconds of wall clock)")
	}
	base := runtime.NumGoroutine()

	rt := atum.NewRealtimeRuntime(atum.RealtimeOptions{Seed: 7})
	const n = 3
	cols := make([]*collector, n)
	nodes := make([]*atum.Node, n)
	for i := 0; i < n; i++ {
		cols[i] = &collector{}
		node, err := rt.AddNode(atum.Callbacks{Deliver: cols[i].deliver})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	if err := rt.Bootstrap(nodes[0]); err != nil {
		t.Fatal(err)
	}
	contact := nodes[0].Identity()
	for i := 1; i < n; i++ {
		if err := rt.Join(nodes[i], contact); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		i := i
		waitCond(t, "join of node", 30*time.Second, func() bool { return rt.IsMember(nodes[i]) })
	}
	if err := rt.BroadcastWith(nodes[0], []byte("leak-probe"), atum.BroadcastOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		waitCond(t, "delivery", 30*time.Second, func() bool { return cols[i].count() >= 1 })
	}

	// Remove one node mid-flight (its mailbox loop must exit), then close
	// the runtime (the rest must follow).
	rt.Remove(nodes[2])
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	settleGoroutines(t, base)
}
